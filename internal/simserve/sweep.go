package simserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"mobilenet/internal/scenario"
	"mobilenet/internal/sweep"
)

// queueFullRetry is how long a sweep dispatcher backs off when the run
// queue cannot hold a point's replicates. Sweeps are the service's own
// batch clients, so they absorb backpressure by waiting instead of
// surfacing 503s to the submitter.
const queueFullRetry = 2 * time.Millisecond

// sweepJob is the internal record of one submitted sweep. All mutable
// fields are guarded by Server.mu.
type sweepJob struct {
	id        string
	hash      string
	spec      sweep.Spec
	points    []sweep.Point
	requestID string        // id of the request that created the sweep
	client    string        // fair-queue lane the sweep's point jobs ride
	deadline  time.Duration // per-point deadline forwarded to each job

	status      string
	pointStatus []string // per point: queued/running/done/failed
	pointCached []bool   // per point: answered from the result cache
	pointErr    []error  // per point: failure, nil otherwise
	payloads    [][]byte // per point: encoded scenario.Result
	done        int      // finished points (done or failed)
	cached      int      // points answered from the cache
	failed      bool     // cancellation flag for the dispatcher

	errMsg string // sweep-level error: the lowest-indexed point failure
	result []byte // encoded sweep.Result, set when status == done
	doneCh chan struct{}
}

// SweepTicket is the service's answer to a sweep submission.
type SweepTicket struct {
	// SweepID identifies the sweep to poll.
	SweepID string `json:"sweep_id"`
	// Hash is the sweep's canonical content hash (order-independent over
	// the expanded point set).
	Hash string `json:"hash"`
	// Status is the sweep state at submission time.
	Status string `json:"status"`
	// Points is the expanded point count.
	Points int `json:"points"`
}

// SweepPointView is the externally visible state of one sweep point.
type SweepPointView struct {
	// Index is the point's position in expansion order.
	Index int `json:"index"`
	// Hash is the point's scenario content hash; its result is fetchable
	// at /v1/results/{hash} once done.
	Hash string `json:"hash"`
	// Status is queued, running, done or failed.
	Status string `json:"status"`
	// Cached reports that the point was answered from the result cache
	// without running anything.
	Cached bool `json:"cached"`
	// Error holds the point's failure message when Status is failed.
	Error string `json:"error,omitempty"`
}

// SweepView is the externally visible state of a sweep: per-point
// progress while running, and the full sweep result once done.
type SweepView struct {
	SweepID string `json:"sweep_id"`
	Hash    string `json:"hash"`
	Status  string `json:"status"`
	// Error holds the lowest-indexed point failure when Status is failed.
	Error string `json:"error,omitempty"`
	// PointsTotal, PointsDone and PointsCached summarise progress.
	PointsTotal  int `json:"points_total"`
	PointsDone   int `json:"points_done"`
	PointsCached int `json:"points_cached"`
	// Points holds the per-point states in expansion order.
	Points []SweepPointView `json:"points"`
	// Result holds the encoded sweep result when Status is done. Each
	// embedded per-point result is byte-identical to the corresponding
	// /v1/results/{hash} payload (and to a library run of the point).
	Result json.RawMessage `json:"result,omitempty"`
}

// SubmitSweep validates and expands the sweep, bounds every point, and
// starts a dispatcher that feeds the points through the ordinary submit
// path — so each point is answered from the hash-keyed result cache,
// coalesced onto an identical in-flight job, or executed on the worker
// pool, exactly as if it had been POSTed individually. Repeated or
// overlapping sweeps therefore deduplicate point by point.
func (s *Server) SubmitSweep(sp sweep.Spec) (SweepTicket, error) {
	return s.SubmitSweepWithRequestID(sp, "")
}

// SubmitSweepWithRequestID is SubmitSweep carrying the originating request
// id; the dispatcher propagates it into every per-point job submission, so
// the point jobs' traces all name the sweep's request.
func (s *Server) SubmitSweepWithRequestID(sp sweep.Spec, requestID string) (SweepTicket, error) {
	return s.SubmitSweepWithOptions(sp, SubmitOptions{RequestID: requestID})
}

// SubmitSweepWithOptions is SubmitSweep carrying the full execution
// envelope. The client id keys every point job into the sweep owner's
// fair-queue lane (a big sweep competes as one client, not as hundreds of
// anonymous jobs), and the deadline applies per point job — bounding each
// point's wall-clock, not the whole sweep's.
func (s *Server) SubmitSweepWithOptions(sp sweep.Spec, opts SubmitOptions) (SweepTicket, error) {
	// Expansion, bounds checks and hashing are the sweep_expand stage of
	// the lifecycle (the dispatcher's dedup pass lands there too).
	t0 := time.Now()
	points, err := sp.Expand()
	if err != nil {
		return SweepTicket{}, err
	}
	if len(points) > s.cfg.MaxSweepPoints {
		return SweepTicket{}, fmt.Errorf("simserve: sweep expands to %d points, exceeding this server's limit of %d", len(points), s.cfg.MaxSweepPoints)
	}
	for _, p := range points {
		if err := s.checkBounds(p.Spec); err != nil {
			return SweepTicket{}, fmt.Errorf("simserve: sweep point %d: %w", p.Index, err)
		}
	}
	hash := sweep.HashPoints(points)
	s.stages[stageSweepExpand].Since(t0)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return SweepTicket{}, errShutdown
	}
	s.nextSweepID++
	j := &sweepJob{
		id:          fmt.Sprintf("sweep-%d", s.nextSweepID),
		hash:        hash,
		spec:        sp,
		points:      points,
		requestID:   opts.RequestID,
		client:      opts.Client,
		deadline:    opts.Deadline,
		status:      StatusQueued,
		pointStatus: make([]string, len(points)),
		pointCached: make([]bool, len(points)),
		pointErr:    make([]error, len(points)),
		payloads:    make([][]byte, len(points)),
		doneCh:      make(chan struct{}),
	}
	for i := range j.pointStatus {
		j.pointStatus[i] = StatusQueued
	}
	s.sweeps[j.id] = j
	s.sweepWG.Add(1)
	s.mu.Unlock()

	go s.runSweep(j)
	return SweepTicket{SweepID: j.id, Hash: hash, Status: StatusQueued, Points: len(points)}, nil
}

// runSweep dispatches a sweep's distinct points in index order, at most
// Workers in flight, and finalises the job. Error semantics mirror the
// sweep library's runPoints (and the experiment harness's runReps): the
// first failure cancels the dispatch of further points, and the
// lowest-indexed failed point's error becomes the sweep's error.
func (s *Server) runSweep(j *sweepJob) {
	defer s.sweepWG.Done()

	// Duplicate points within one sweep share a single submission; the
	// grouping is the library executor's, so both paths dedupe alike.
	t0 := time.Now()
	uniq := sweep.Distinct(j.points)
	s.stages[stageSweepExpand].Since(t0)

	s.mu.Lock()
	j.status = StatusRunning
	s.mu.Unlock()

	cancelled := func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return j.failed
	}
	recordErr := func(u sweep.DistinctPoint, err error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, idx := range u.Indices {
			j.pointStatus[idx] = StatusFailed
			j.pointErr[idx] = err
			j.done++
		}
		j.failed = true
	}
	recordRunning := func(u sweep.DistinctPoint) {
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, idx := range u.Indices {
			j.pointStatus[idx] = StatusRunning
		}
	}
	recordPayload := func(u sweep.DistinctPoint, payload []byte, cached bool) {
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, idx := range u.Indices {
			j.pointStatus[idx] = StatusDone
			j.pointCached[idx] = cached
			j.payloads[idx] = payload
			j.done++
		}
		if cached {
			j.cached += len(u.Indices)
			s.sweepPointsCached.Add(uint64(len(u.Indices)))
		}
	}

	// Execution happens below the PointExecutor seam: locally on this
	// server's pool by default, or sharded across a fleet when a
	// coordinator configured a remote executor. The dispatcher owns the
	// in-flight bound and the progress/error accounting either way.
	exec := s.executor()
	sem := make(chan struct{}, s.executorConcurrency(exec))
	var wg sync.WaitGroup
	for _, u := range uniq {
		if cancelled() {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(u sweep.DistinctPoint) {
			defer wg.Done()
			defer func() { <-sem }()
			payload, cached, err := exec.ExecutePoint(u.Point, SubmitOptions{
				RequestID: j.requestID, Client: j.client, Deadline: j.deadline,
			}, PointProgress{
				Cancelled: cancelled,
				Started:   func() { recordRunning(u) },
			})
			if err != nil {
				recordErr(u, fmt.Errorf("simserve: sweep point %d: %w", u.Index, err))
				return
			}
			recordPayload(u, payload, cached)
		}(u)
	}
	wg.Wait()
	s.finishSweep(j)
}

// submitPoint submits one point spec under the sweep's execution
// envelope, absorbing transient queue-full rejections by backing off
// until the queue has room, the sweep is cancelled, or the server shuts
// down. These retries are internal flow control and never touch the shed
// counters — the sweep was already admitted at the HTTP layer.
func (s *Server) submitPoint(spec scenario.Spec, opts SubmitOptions, cancelled func() bool) (Ticket, error) {
	for {
		t, err := s.SubmitWithOptions(spec, opts)
		if err == nil {
			return t, nil
		}
		if !errors.Is(err, ErrQueueFull) || cancelled() {
			return Ticket{}, err
		}
		time.Sleep(queueFullRetry)
	}
}

// finishSweep assembles the sweep result (or its failure) and finalises
// the job record.
func (s *Server) finishSweep(j *sweepJob) {
	s.mu.Lock()
	var errMsg string
	for _, e := range j.pointErr { // point order: first hit is the lowest index
		if e != nil {
			errMsg = e.Error()
			break
		}
	}
	if errMsg == "" && j.done < len(j.points) {
		// Defensive: cannot happen — dispatch only stops early on failure.
		errMsg = fmt.Sprintf("simserve: sweep finished with %d of %d points", j.done, len(j.points))
	}
	payloads := j.payloads
	s.mu.Unlock()

	// Decode, assemble and encode outside the lock, mirroring completeRep:
	// a large sweep result must not stall the whole service while it
	// marshals.
	var result []byte
	if errMsg == "" {
		results := make([]*scenario.Result, len(payloads))
		for i, p := range payloads {
			var r scenario.Result
			if err := json.Unmarshal(p, &r); err != nil {
				errMsg = fmt.Sprintf("simserve: corrupt payload for point %d: %v", i, err)
				break
			}
			results[i] = &r
		}
		if errMsg == "" {
			assembled, err := sweep.Assemble(j.spec, j.points, results)
			if err == nil {
				result, err = json.Marshal(assembled)
			}
			if err != nil {
				errMsg = err.Error()
			}
		}
	}

	s.mu.Lock()
	j.errMsg = errMsg
	// The per-point payloads are consumed: the view serves j.result (done)
	// or j.pointErr (failed), and the same bytes stay fetchable through
	// the result cache — keeping them here would double the memory every
	// retained sweep record pins.
	j.payloads = nil
	if errMsg == "" {
		j.status = StatusDone
		j.result = result
		s.sweepsServed.Add(1)
	} else {
		j.status = StatusFailed
		j.result = nil
		s.sweepsFailed.Add(1)
	}
	s.finishedSweeps = append(s.finishedSweeps, j.id)
	for len(s.finishedSweeps) > s.cfg.MaxSweeps {
		delete(s.sweeps, s.finishedSweeps[0])
		s.finishedSweeps = s.finishedSweeps[1:]
	}
	s.mu.Unlock()
	close(j.doneCh)
}

// Sweep returns the visible state of a sweep.
func (s *Server) Sweep(id string) (SweepView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.sweeps[id]
	if !ok {
		return SweepView{}, false
	}
	v := SweepView{
		SweepID:      j.id,
		Hash:         j.hash,
		Status:       j.status,
		Error:        j.errMsg,
		PointsTotal:  len(j.points),
		PointsDone:   j.done,
		PointsCached: j.cached,
		Points:       make([]SweepPointView, len(j.points)),
	}
	for i, p := range j.points {
		pv := SweepPointView{Index: p.Index, Hash: p.Hash, Status: j.pointStatus[i], Cached: j.pointCached[i]}
		if j.pointErr[i] != nil {
			pv.Error = j.pointErr[i].Error()
		}
		v.Points[i] = pv
	}
	if j.status == StatusDone {
		v.Result = j.result
	}
	return v, true
}

// WaitSweep blocks until the sweep finishes (or ctx expires) and returns
// its encoded result. Failed sweeps return an error carrying the
// lowest-indexed point failure.
func (s *Server) WaitSweep(ctx context.Context, id string) ([]byte, error) {
	s.mu.Lock()
	j, ok := s.sweeps[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("simserve: unknown sweep %q", id)
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-j.doneCh:
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.status != StatusDone {
		return nil, fmt.Errorf("simserve: sweep %s failed: %s", j.id, j.errMsg)
	}
	return j.result, nil
}
