package simserve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"mobilenet/internal/obs"
	"mobilenet/internal/scenario"
	"mobilenet/internal/sweep"
)

// observedSpec is the series tests' shared scenario: a small broadcast
// observing the informed count every step across three replicates.
func observedSpec() scenario.Spec {
	return scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 256, Agents: 16,
		Radius: 1, Seed: 2011, Reps: 3,
		Observe: &obs.Spec{Observables: []string{obs.Informed}}}
}

// TestSeriesEndpoint is the service half of the acceptance criterion: the
// NDJSON streamed by GET /v1/results/{hash}/series is byte-identical to the
// library's obs.WriteNDJSON render of the same scenario, the informed
// series is monotone and ends at the population size, and repeated fetches
// (including a cache-evicted re-render) return the identical bytes.
func TestSeriesEndpoint(t *testing.T) {
	t.Parallel()
	s, ts := testServer(t, Config{Workers: 2})
	spec := observedSpec()

	direct, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := obs.WriteNDJSON(&want, direct.Series); err != nil {
		t.Fatal(err)
	}

	ticket, code := postSpec(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submission status %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.Wait(ctx, ticket.JobID); err != nil {
		t.Fatal(err)
	}

	body, code := getBody(t, ts.URL+"/v1/results/"+ticket.Hash+"/series")
	if code != http.StatusOK {
		t.Fatalf("series fetch: status %d: %s", code, body)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Errorf("service series diverges from library:\nservice: %s\nlibrary: %s", body, want.Bytes())
	}

	// While every replicate contributes (n = reps), the informed mean is
	// monotone non-decreasing; the very last aggregated step belongs to
	// the slowest replicate alone, whose final sample is the full
	// population k. (Strict whole-series monotonicity is pinned on the
	// single-replicate acceptance path in cmd/mobisim's tests — with
	// ragged multi-rep series, a finished replicate dropping out of the
	// mean can dip it.)
	var last float64
	prevFull := 0.0
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	for _, line := range lines {
		var p struct {
			Name string  `json:"name"`
			N    int     `json:"n"`
			Mean float64 `json:"mean"`
		}
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if p.Name != obs.Informed {
			t.Fatalf("unexpected observable %q", p.Name)
		}
		if p.N == 3 {
			if p.Mean < prevFull {
				t.Fatalf("full-n informed series not monotone: %v after %v", p.Mean, prevFull)
			}
			prevFull = p.Mean
		}
		last = p.Mean
	}
	if last != 16 {
		t.Errorf("informed series ends at %v, want 16", last)
	}

	// Repeated fetch: identical bytes (this one served from the rendered
	// cache entry).
	again, _ := getBody(t, ts.URL+"/v1/results/"+ticket.Hash+"/series")
	if !bytes.Equal(again, body) {
		t.Error("repeated series fetch returned different bytes")
	}
}

// TestSeriesNotFoundPaths: an unknown hash 404s, and a cached result whose
// scenario observed nothing 404s with the pointed no-observe message.
func TestSeriesNotFoundPaths(t *testing.T) {
	t.Parallel()
	s, ts := testServer(t, Config{Workers: 1})
	if body, code := getBody(t, ts.URL+"/v1/results/deadbeef/series"); code != http.StatusNotFound {
		t.Errorf("unknown hash series: status %d body %s", code, body)
	}
	spec := scenario.Spec{Engine: scenario.EngineGossip, Nodes: 256, Agents: 8, Seed: 5}
	ticket, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.Wait(ctx, ticket.JobID); err != nil {
		t.Fatal(err)
	}
	body, code := getBody(t, ts.URL+"/v1/results/"+ticket.Hash+"/series")
	if code != http.StatusNotFound || !strings.Contains(string(body), "observe") {
		t.Errorf("unobserved scenario series: status %d body %s", code, body)
	}
}

// TestSeriesBoundRejectsUnboundedObservation: a spec that could record
// more points per replicate than the server's MaxSeriesPoints is rejected
// at submit time, and max_points re-admits it.
func TestSeriesBoundRejectsUnboundedObservation(t *testing.T) {
	t.Parallel()
	s, _ := testServer(t, Config{Workers: 1, MaxSeriesPoints: 128})
	spec := scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 256, Agents: 8,
		Seed: 1, MaxSteps: 100000,
		Observe: &obs.Spec{Observables: []string{obs.Informed}}}
	if _, err := s.Submit(spec); err == nil {
		t.Error("unbounded observation accepted past MaxSeriesPoints")
	}
	// A coarser cadence fits.
	spec.Observe = &obs.Spec{Observables: []string{obs.Informed}, Every: 1000}
	if _, err := s.Submit(spec); err != nil {
		t.Errorf("cadence-bounded observation rejected: %v", err)
	}
	// So does an explicit max_points, regardless of cadence.
	spec.Observe = &obs.Spec{Observables: []string{obs.Informed}, MaxPoints: 64}
	if _, err := s.Submit(spec); err != nil {
		t.Errorf("max_points-bounded observation rejected: %v", err)
	}
	// An oversized max_points is rejected even with a tiny max_steps: the
	// explicit budget is what the server holds clients to.
	spec.Observe = &obs.Spec{Observables: []string{obs.Informed}, MaxPoints: 4096}
	spec.MaxSteps = 10
	if _, err := s.Submit(spec); err == nil {
		t.Error("oversized max_points accepted")
	}
	// A spec on the engine's default (completion-targeted) cap is
	// admitted without a series check: ordinary observed scenarios must
	// not need max_points ceremony (the CPU admission posture already
	// dominates the memory a default-capped run can record).
	spec = scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 1 << 14, Agents: 8, Seed: 1,
		MaxSteps: 500,
		Observe:  &obs.Spec{Observables: []string{obs.Informed}, Every: 4}}
	if _, err := s.Submit(spec); err != nil {
		t.Errorf("in-budget explicit cap rejected: %v", err)
	}
	defaultCap := scenario.Spec{Engine: scenario.EngineGossip, Nodes: 256, Agents: 8, Seed: 1,
		Observe: &obs.Spec{Observables: []string{obs.Informed}}}
	if _, err := s.Submit(defaultCap); err != nil {
		t.Errorf("default-cap observed spec rejected: %v", err)
	}
}

// sweepSpecWithObserve is a two-point sweep whose base carries an observe
// block, so every expanded point is an observed scenario.
func sweepSpecWithObserve() sweep.Spec {
	base := observedSpec()
	base.Reps = 2
	return sweep.Spec{
		Base: base,
		Axes: []sweep.Axis{{Field: "agents", Values: []any{int64(8), int64(16)}}},
	}
}

// TestSweepCarriesSeries: the sweep path carries series through
// point payloads untouched — an observed base rides POST /v1/sweeps and
// every per-point payload still embeds the per-rep series.
func TestSweepCarriesSeries(t *testing.T) {
	t.Parallel()
	s, _ := testServer(t, Config{Workers: 2})
	sp := sweepSpecWithObserve()
	ticket, err := s.SubmitSweep(sp)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	payload, err := s.WaitSweep(ctx, ticket.SweepID)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Points []struct {
			Hash   string           `json:"hash"`
			Result *scenario.Result `json:"result"`
		} `json:"points"`
	}
	if err := json.Unmarshal(payload, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Points) != 2 {
		t.Fatalf("points = %d", len(decoded.Points))
	}
	for i, p := range decoded.Points {
		if p.Result == nil || len(p.Result.Series) == 0 {
			t.Errorf("sweep point %d lost its series", i)
		}
		// And each point's series is individually streamable.
		if _, ok, err := s.Series(p.Hash); !ok || err != nil {
			t.Errorf("point %d series fetch: ok=%v err=%v", i, ok, err)
		}
	}
}
