package simserve

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestLRUEvictsOldest(t *testing.T) {
	t.Parallel()
	c := newLRU(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	// Touch a so b becomes the eviction candidate.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if v, ok := c.Get("a"); !ok || !bytes.Equal(v, []byte("A")) {
		t.Error("a evicted or corrupted")
	}
	if v, ok := c.Get("c"); !ok || !bytes.Equal(v, []byte("C")) {
		t.Error("c missing")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestLRURefreshKeepsSingleEntry(t *testing.T) {
	t.Parallel()
	c := newLRU(4)
	c.Put("a", []byte("A1"))
	c.Put("a", []byte("A2"))
	if c.Len() != 1 {
		t.Errorf("len = %d after double put, want 1", c.Len())
	}
	if v, _ := c.Get("a"); !bytes.Equal(v, []byte("A2")) {
		t.Errorf("got %q, want refreshed value", v)
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	t.Parallel()
	c := newLRU(0)
	c.Put("a", []byte("A"))
	if _, ok := c.Get("a"); !ok {
		t.Error("zero-capacity cache clamped wrong")
	}
}

// TestLRUConcurrent exercises the cache from many goroutines; meaningful
// under -race.
func TestLRUConcurrent(t *testing.T) {
	t.Parallel()
	c := newLRU(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%16)
				c.Put(key, []byte(key))
				if v, ok := c.Get(key); ok && !bytes.Equal(v, []byte(key)) {
					t.Errorf("key %s holds %q", key, v)
				}
			}
		}(g)
	}
	wg.Wait()
}
