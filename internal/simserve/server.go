// Package simserve turns the scenario layer into a concurrent simulation
// service: a bounded worker pool executes scenario replicates (each under
// its position-derived seed, so results never depend on scheduling), an
// LRU cache keyed by the scenario's canonical content hash answers repeated
// submissions with byte-identical payloads, and an HTTP JSON API exposes
// submit/poll/fetch plus health and metrics endpoints. cmd/mobiserved wraps
// the package into a daemon.
package simserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mobilenet/internal/cancel"
	"mobilenet/internal/chaos"
	"mobilenet/internal/obs"
	"mobilenet/internal/prof"
	"mobilenet/internal/scenario"
	"mobilenet/internal/store"
	"mobilenet/internal/telemetry"
	"mobilenet/internal/theory"
)

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// Workers is the worker-pool size; 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of replicate tasks waiting for a
	// worker; 0 selects 256. A submission whose replicates do not all fit
	// is rejected with ErrQueueFull rather than partially enqueued.
	QueueDepth int
	// CacheEntries bounds the result cache; 0 selects 256.
	CacheEntries int
	// MaxJobs bounds retained finished-job records; 0 selects 1024. The
	// oldest finished records are dropped first (their results stay
	// fetchable through the cache until evicted there).
	MaxJobs int
	// MaxNodes, MaxAgents and MaxSteps bound the size of a single
	// accepted scenario; specs arrive from untrusted HTTP clients, and an
	// unbounded nodes count is an allocation the size of the grid while
	// an unbounded step cap is unbounded worker CPU. MaxSteps bounds the
	// EFFECTIVE cap: the explicit max_steps when given, otherwise a
	// conservative over-estimate of the engine's theory-derived default
	// (so a huge grid cannot smuggle in an astronomically large default —
	// such specs must state an explicit, in-bounds max_steps). Zero
	// selects 1<<24 nodes (a 4096x4096 grid), 1<<20 agents and
	// math.MaxInt32 steps. Oversized specs are rejected as permanently
	// unservable (HTTP 400), not retry-later.
	MaxNodes  int
	MaxAgents int
	MaxSteps  int
	// MaxSweepPoints bounds the expanded point count of one submitted
	// sweep; 0 selects 1024. Every point additionally passes the
	// single-scenario bounds above.
	MaxSweepPoints int
	// MaxSeriesPoints bounds the recorded points per replicate of an
	// observed scenario; 0 selects 1<<20. It bounds the EXPLICIT budget:
	// the observe block's max_points when set, otherwise the explicit
	// max_steps divided by the cadence — so a client cannot pin
	// gigabyte-sized series by pairing a huge max_steps with a fine
	// cadence. Specs that leave max_steps to the engine's
	// completion-targeted default are admitted without a series check:
	// recording costs a few dozen bytes per simulated step, orders of
	// magnitude below the per-step CPU the server already agreed to
	// spend, and grids large enough to derive a monstrous default cap
	// are forced by MaxSteps admission to state an explicit (and
	// therefore series-checked) max_steps anyway. Oversized specs are
	// rejected as permanently unservable (HTTP 400) with a pointer at
	// max_points.
	MaxSeriesPoints int
	// MaxSweeps bounds retained finished-sweep records; 0 selects 256.
	// Like MaxJobs, the oldest finished records are dropped first.
	MaxSweeps int

	// DefaultDeadline bounds jobs submitted without an explicit deadline;
	// 0 applies no default (jobs run to their step cap unless MaxDeadline
	// is set). A job past its deadline is cancelled mid-replicate within
	// one engine check interval and reports status "cancelled".
	DefaultDeadline time.Duration
	// MaxDeadline caps every job's effective deadline, including jobs
	// that asked for none — a server with MaxDeadline set never runs a
	// job unbounded. 0 applies no cap.
	MaxDeadline time.Duration
	// RateLimit is the per-client token-bucket refill rate in submissions
	// per second, keyed by client id (X-Client-Id header or remote
	// address). 0 disables rate limiting. Over-limit submissions are shed
	// at the HTTP layer with 429 + Retry-After before any spec parsing.
	RateLimit float64
	// RateBurst is the token-bucket capacity; 0 selects one second's
	// worth of RateLimit (minimum 1).
	RateBurst int
	// ClientWeights optionally assigns fair-queue weights by client id: a
	// weight-w client's lane serves w tasks per round-robin visit.
	// Missing clients weigh 1 (plain round robin).
	ClientWeights map[string]int
	// Chaos, when non-nil, arms the fault-injection harness (see
	// internal/chaos): worker panics, engine step stalls, dropped cache
	// writes and dequeue latency fire at the injector's configured rates,
	// and each firing is counted in mobiserved_chaos_injections_total.
	// Nil (production) costs one nil-check per injection point.
	Chaos *chaos.Injector

	// Store, when non-nil, adds a disk-backed content-addressed spill tier
	// under the LRU (see internal/store): evicted-or-never-cached results
	// are read through from disk (and promoted), finished results are
	// written behind, and a daemon restart over the same directory serves
	// previously computed points byte-identical without re-running them.
	// The caller owns opening (store.Open) and therefore the directory and
	// byte-bound policy; the server owns the read-through/write-behind
	// traffic and the store's telemetry exposition. Nil keeps the
	// memory-only pre-store behaviour.
	Store *store.Store

	// Executor, when non-nil, replaces the sweep dispatcher's local
	// execution of distinct points: a coordinator plugs in a
	// fleet-sharding executor (see internal/cluster) here, so sweep points
	// run on workers chosen by rendezvous hashing while single-run
	// submissions still execute locally. Nil (the default, and every
	// worker) executes points on the server's own pool.
	Executor PointExecutor
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 1 << 24
	}
	if c.MaxAgents <= 0 {
		c.MaxAgents = 1 << 20
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = math.MaxInt32
	}
	if c.MaxSweepPoints <= 0 {
		c.MaxSweepPoints = 1024
	}
	if c.MaxSeriesPoints <= 0 {
		c.MaxSeriesPoints = 1 << 20
	}
	if c.MaxSweeps <= 0 {
		c.MaxSweeps = 256
	}
	return c
}

// stepBoundExceeds reports whether the step cap a canonical spec will run
// under — the explicit max_steps when set, otherwise a ceiling over every
// engine's theory-derived default (256x the §4 cover-time bound dominates
// the broadcast, gossip, frog, coverage and predator defaults) — exceeds
// the server's limit. The comparison happens in float space so an
// astronomically large derived cap cannot clamp down onto the limit and
// slip past it.
func stepBoundExceeds(c scenario.Spec, limit int) bool {
	if c.MaxSteps > 0 {
		return c.MaxSteps > limit
	}
	return 256*theory.CoverTimeBound(c.Nodes, c.Agents) > float64(limit)
}

// seriesBoundExceeds reports whether an observed canonical spec's
// explicit budget could record more than limit points per replicate: its
// max_points when set, otherwise the explicit max_steps over the cadence.
// A spec that leaves max_steps to the engine's default passes — see the
// MaxSeriesPoints doc for why the CPU posture already dominates there —
// and the division happens in float space for the same
// no-clamp-past-the-limit reason as stepBoundExceeds.
func seriesBoundExceeds(c scenario.Spec, limit int) bool {
	if c.Observe == nil {
		return false
	}
	if c.Observe.MaxPoints > 0 {
		return c.Observe.MaxPoints > limit
	}
	if c.MaxSteps <= 0 {
		return false
	}
	every := c.Observe.Every
	if every < 1 {
		every = 1
	}
	return float64(c.MaxSteps)/float64(every) > float64(limit)
}

// Job states reported by Ticket.Status and JobView.Status.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
	// StatusCancelled reports a job stopped before completing — deadline
	// expiry or server shutdown — as distinct from an engine failure.
	// Cancelled jobs never cache a payload.
	StatusCancelled = "cancelled"
)

// ErrQueueFull reports that the run queue cannot hold the submission's
// replicates; clients should retry later (HTTP 503).
var ErrQueueFull = errors.New("simserve: run queue full")

// errShutdown reports a submission after Shutdown began.
var errShutdown = errors.New("simserve: server is shutting down")

// job is the internal record of one submitted scenario. All mutable fields
// are guarded by Server.mu; trace carries its own lock.
type job struct {
	id        string
	hash      string
	spec      scenario.Spec // canonical
	requestID string        // id of the request that created the job
	client    string        // fair-queue lane the job's replicates ride
	status    string
	errMsg    string
	reps      []scenario.Rep
	pending   int
	cancelled bool          // at least one replicate stopped on cancellation
	cancelMsg string        // first cancellation cause observed
	payload   []byte        // encoded Result, set when status == done
	done      chan struct{} // closed on done, failed or cancelled

	// ctx is the job's execution context: workers run every replicate
	// under it, engines poll it each check interval. cancelCause fires it
	// on deadline expiry (via deadlineTimer), on the first real replicate
	// failure (siblings of a doomed job stop instead of finishing work
	// nobody will assemble), and on shutdown past the drain budget.
	ctx           context.Context
	cancelCause   context.CancelCauseFunc
	deadlineTimer *time.Timer

	// trace spans the job's lifecycle (submit, per-replicate queue wait
	// and execution, assembly) for GET /v1/jobs/{id}/trace.
	trace *prof.Trace
	// waitTotal, execTotal and assembleTotal accumulate the job's own
	// share of the lifecycle stages — queue wait and execution summed
	// over replicates, assembly once — for per-request slow-log
	// breakdowns (see StageRecorder).
	waitTotal     time.Duration
	execTotal     time.Duration
	assembleTotal time.Duration
}

// task is the pool's unit of work: one replicate of one job. The enqueue
// timestamp feeds the queue-wait histogram when a worker picks it up.
type task struct {
	job      *job
	rep      int
	enqueued time.Time
}

// Ticket is the service's answer to a submission.
type Ticket struct {
	// JobID identifies the job to poll; empty when Cached.
	JobID string `json:"job_id,omitempty"`
	// Hash is the scenario's canonical content hash (the result key).
	Hash string `json:"hash"`
	// Status is the job state at submission time; "done" when Cached.
	Status string `json:"status"`
	// Cached reports that the result was served from the cache without
	// running anything.
	Cached bool `json:"cached"`
}

// JobView is the externally visible state of a job.
type JobView struct {
	JobID  string `json:"job_id"`
	Hash   string `json:"hash"`
	Status string `json:"status"`
	// Error holds the failure message when Status is "failed".
	Error string `json:"error,omitempty"`
	// Result holds the encoded scenario result when Status is "done". It
	// is byte-identical to the /v1/results/{hash} payload.
	Result json.RawMessage `json:"result,omitempty"`
}

// Server is the simulation service. Construct with New; it is an
// http.Handler (see routes in newMux) and also usable programmatically via
// Submit/Job/Result/Wait.
type Server struct {
	cfg   Config
	cache *tieredCache

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*job
	inflight map[string]*job // hash -> unfinished job, for coalescing
	finished []string        // finished job ids, oldest first, for eviction
	nextID   uint64

	sweeps         map[string]*sweepJob
	finishedSweeps []string // finished sweep ids, oldest first, for eviction
	nextSweepID    uint64
	sweepWG        sync.WaitGroup // sweep dispatcher goroutines

	queue   *fairQueue
	wg      sync.WaitGroup
	limiter *rateLimiter // nil when rate limiting is off
	chaos   *chaos.Injector

	// slowStepHook, when chaos arms slow-step, rides job contexts into the
	// engines (cancel.WithHook) and stalls at the amortized poll points —
	// fault injection without the engines knowing chaos exists.
	slowStepHook func()

	// Service counters live in the telemetry registry (initMetrics) so the
	// /metrics body is one WritePrometheus call; the fields are the write
	// handles the request paths bump.
	metrics           *telemetry.Registry
	jobsServed        *telemetry.Counter
	jobsFailed        *telemetry.Counter
	cacheHits         *telemetry.Counter
	cacheMisses       *telemetry.Counter
	sweepsServed      *telemetry.Counter
	sweepsFailed      *telemetry.Counter
	sweepPointsCached *telemetry.Counter
	seriesServed      *telemetry.Counter
	panicsRecovered   *telemetry.Counter
	jobsCancelled     *telemetry.Counter
	shed              map[string]*telemetry.Counter              // shed reason -> counter
	stages            map[string]*telemetry.Histogram            // stage name -> latency histogram
	httpHists         map[string]*telemetry.Histogram            // route -> latency histogram
	phaseHists        map[string]map[string]*telemetry.Histogram // engine -> phase -> histogram

	// Request-id generation state: start-time base plus a sequence, so
	// generated ids are process-unique without any global state.
	reqBase int64
	reqSeq  atomic.Uint64

	mux *http.ServeMux
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    newTieredCache(cfg.CacheEntries, cfg.Store),
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		sweeps:   make(map[string]*sweepJob),
		queue:    newFairQueue(cfg.QueueDepth, cfg.ClientWeights),
		limiter:  newRateLimiter(cfg.RateLimit, cfg.RateBurst),
		chaos:    cfg.Chaos,
		reqBase:  time.Now().UnixNano(),
	}
	if s.chaos.Active(chaos.SlowStep) {
		s.slowStepHook = func() {
			if s.chaos.Fire(chaos.SlowStep) {
				time.Sleep(s.chaos.Delay(chaos.SlowStep))
			}
		}
	}
	s.initMetrics()
	s.mux = newMux(s)
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit validates and canonicalises the spec, then answers from the cache,
// coalesces onto an identical in-flight job, or enqueues a new job whose
// replicates the pool executes under position-derived seeds.
//
// The whole call is the "admission" stage of the request lifecycle —
// validation, canonicalisation, hashing, bounds checks, cache probes and
// the enqueue itself — and lands in the stage histogram even when the
// submission is rejected, so admission-path regressions are visible.
func (s *Server) Submit(spec scenario.Spec) (Ticket, error) {
	return s.SubmitWithOptions(spec, SubmitOptions{})
}

// SubmitWithRequestID is Submit carrying the originating request id, which
// the created job records and its exported trace annotates — one id
// threads HTTP request -> job -> replicate spans (and, via sweep
// dispatchers, sweep -> point jobs). A submission that coalesces onto an
// in-flight job keeps that job's original id: the job's identity is its
// content hash, and the first requester named it.
func (s *Server) SubmitWithRequestID(spec scenario.Spec, requestID string) (Ticket, error) {
	return s.SubmitWithOptions(spec, SubmitOptions{RequestID: requestID})
}

// SubmitOptions carries a submission's execution envelope — everything
// about HOW to run that is not part of the scenario's identity. None of it
// touches the canonical spec or the content hash.
type SubmitOptions struct {
	// RequestID threads the originating request id into the job record
	// and its trace (see SubmitWithRequestID).
	RequestID string
	// Client keys the fair-queue lane (and, at the HTTP layer, the rate
	// limiter). Empty ids share the anonymous lane.
	Client string
	// Deadline bounds the job's wall-clock; 0 asks for the server's
	// DefaultDeadline. Either way MaxDeadline caps the result.
	Deadline time.Duration
}

// effectiveDeadline resolves a requested deadline against the server's
// default and cap. 0 means unbounded only when the server sets no
// MaxDeadline.
func (s *Server) effectiveDeadline(req time.Duration) time.Duration {
	d := req
	if d <= 0 {
		d = s.cfg.DefaultDeadline
	}
	if max := s.cfg.MaxDeadline; max > 0 && (d <= 0 || d > max) {
		d = max
	}
	return d
}

// SubmitWithOptions is Submit carrying the full execution envelope: the
// originating request id, the client id for fair queuing, and the
// requested deadline.
func (s *Server) SubmitWithOptions(spec scenario.Spec, opts SubmitOptions) (Ticket, error) {
	t0 := time.Now()
	defer s.stages[stageAdmission].Since(t0)
	c, err := spec.Canonical()
	if err != nil {
		return Ticket{}, err
	}
	if err := s.checkBounds(c); err != nil {
		return Ticket{}, err
	}
	hash, err := scenario.HashCanonical(c)
	if err != nil {
		return Ticket{}, err
	}
	if payload, ok := s.cache.Get(hash); ok && payload != nil {
		s.cacheHits.Add(1)
		return Ticket{Hash: hash, Status: StatusDone, Cached: true}, nil
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Ticket{}, errShutdown
	}
	if j, ok := s.inflight[hash]; ok {
		// Coalesced onto an identical in-flight job: neither a cache hit
		// nor a miss — no new work was created.
		return Ticket{JobID: j.id, Hash: hash, Status: j.status}, nil
	}
	// Re-probe the cache under the lock: an identical job may have
	// finished between the unlocked probe above and acquiring s.mu, and
	// re-running a result that is already cached would waste a full
	// simulation.
	if payload, ok := s.cache.Get(hash); ok && payload != nil {
		s.cacheHits.Add(1)
		return Ticket{Hash: hash, Status: StatusDone, Cached: true}, nil
	}
	if c.Reps > s.cfg.QueueDepth {
		// Structurally unservable at this queue size — not a transient
		// condition, so deliberately NOT ErrQueueFull (no point retrying).
		return Ticket{}, fmt.Errorf("simserve: %d replicates exceed the queue depth %d; lower reps or raise the server's -queue", c.Reps, s.cfg.QueueDepth)
	}
	j := &job{
		hash:      hash,
		spec:      c,
		requestID: opts.RequestID,
		client:    opts.Client,
		status:    StatusQueued,
		reps:      make([]scenario.Rep, c.Reps),
		pending:   c.Reps,
		done:      make(chan struct{}),
		trace:     prof.NewTrace(),
	}
	j.ctx, j.cancelCause = context.WithCancelCause(context.Background())
	if d := s.effectiveDeadline(opts.Deadline); d > 0 {
		// One AfterFunc per job instead of a second derived context: the
		// workers only ever consult j.ctx, and the timer names the
		// deadline in the cancellation cause the client reads back.
		j.deadlineTimer = time.AfterFunc(d, func() {
			j.cancelCause(fmt.Errorf("job deadline (%s) exceeded", d))
		})
	}
	// One timestamp covers the whole fan-out: replicates of one job enter
	// the queue together, and per-task clock reads would only smear the
	// queue-wait histogram by the enqueue loop's own cost. Admission is
	// all-or-nothing against the global depth bound.
	now := time.Now()
	ts := make([]task, c.Reps)
	for rep := 0; rep < c.Reps; rep++ {
		ts[rep] = task{job: j, rep: rep, enqueued: now}
	}
	if !s.queue.tryPush(opts.Client, ts) {
		if j.deadlineTimer != nil {
			j.deadlineTimer.Stop()
		}
		j.cancelCause(nil)
		return Ticket{}, ErrQueueFull
	}
	// Counted only once work is actually created: rejected submissions are
	// neither hits nor misses ("misses" = submissions that had to run).
	s.cacheMisses.Add(1)
	s.nextID++
	j.id = fmt.Sprintf("job-%d", s.nextID)
	j.trace.NameThread(0, "job")
	s.jobs[j.id] = j
	s.inflight[hash] = j
	// The submit span starts at the trace epoch (spans never precede it)
	// and covers the admission work from t0, so the trace timeline opens
	// with how long admission took and who asked.
	args := map[string]string{"hash": hash, "reps": strconv.Itoa(c.Reps)}
	if opts.RequestID != "" {
		args["request_id"] = opts.RequestID
	}
	j.trace.Add("submit "+c.Engine, "job", 0, j.trace.Epoch(), time.Since(t0), args)
	return Ticket{JobID: j.id, Hash: hash, Status: j.status}, nil
}

// checkBounds enforces the server's size limits on one canonical spec.
// Library callers may run any size they like; a service must bound what
// one untrusted submission can allocate or occupy.
func (s *Server) checkBounds(c scenario.Spec) error {
	switch {
	case c.Nodes > s.cfg.MaxNodes:
		return fmt.Errorf("simserve: %d nodes exceed this server's limit of %d", c.Nodes, s.cfg.MaxNodes)
	case c.Agents > s.cfg.MaxAgents:
		return fmt.Errorf("simserve: %d agents exceed this server's limit of %d", c.Agents, s.cfg.MaxAgents)
	case c.Preys > s.cfg.MaxAgents:
		return fmt.Errorf("simserve: %d preys exceed this server's limit of %d", c.Preys, s.cfg.MaxAgents)
	case stepBoundExceeds(c, s.cfg.MaxSteps):
		return fmt.Errorf("simserve: the effective step cap exceeds this server's limit of %d (set an explicit, smaller max_steps)", s.cfg.MaxSteps)
	case seriesBoundExceeds(c, s.cfg.MaxSeriesPoints):
		return fmt.Errorf("simserve: the observed series could exceed this server's limit of %d points per replicate (set observe.max_points or a coarser cadence)", s.cfg.MaxSeriesPoints)
	}
	return nil
}

// worker executes replicate tasks until the queue closes and drains.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		t, ok := s.queue.pop()
		if !ok {
			return
		}
		if s.chaos.Fire(chaos.QueueLatency) {
			time.Sleep(s.chaos.Delay(chaos.QueueLatency))
		}
		wait := time.Since(t.enqueued)
		s.stages[stageQueueWait].Record(wait)
		s.mu.Lock()
		if t.job.status == StatusQueued {
			t.job.status = StatusRunning
		}
		t.job.waitTotal += wait
		s.mu.Unlock()

		seed := scenario.RepSeed(t.job.spec.Seed, t.rep)
		r, ok := scenario.Lookup(t.job.spec.Engine)
		var (
			rep scenario.Rep
			err error
		)
		switch {
		case !ok:
			err = fmt.Errorf("simserve: unknown engine %q", t.job.spec.Engine)
		case t.job.ctx.Err() != nil:
			// The job was cancelled while this replicate waited in the
			// queue — deadline expiry, a sibling's failure, or shutdown
			// escalation. Skip the run entirely: an abandoned job must
			// free its workers, not occupy them for a payload nobody
			// will receive.
			err = fmt.Errorf("%w: %v", scenario.ErrCancelled, context.Cause(t.job.ctx))
		default:
			// The pool is the service's parallelism layer: replicates
			// already fan out across every worker, so each replicate
			// labels components sequentially. This deliberately overrides
			// whatever Parallelism the submitter set (canonicalisation
			// zeroed it anyway — it is execution-only and never part of
			// the job's identity) and keeps a saturated server from
			// stacking labeller goroutines on top of busy workers.
			spec := t.job.spec
			spec.Parallelism = 1
			// The service always profiles: phase breakdowns cost a few
			// clock reads per step and feed the engine-phase histograms
			// and the job trace. Like Parallelism this is execution-only —
			// canonicalisation zeroed it, so it never splits the cache.
			spec.Profile = true
			// The engines poll this context at their amortized check
			// interval; slow-step chaos rides the same poll points as a
			// context hook, so the engines never import chaos.
			ctx := t.job.ctx
			if s.slowStepHook != nil {
				ctx = cancel.WithHook(ctx, s.slowStepHook)
			}
			// The execute stage times exactly the Runner.RunRep seam — the
			// scenario runner's whole per-replicate simulation — so the
			// histogram hook sits once per replicate, never inside the
			// per-step hot loop.
			t0 := time.Now()
			rep, err = s.runRep(ctx, r, spec, seed, t.rep)
			exec := time.Since(t0)
			s.stages[stageExecute].Record(exec)
			s.mu.Lock()
			t.job.execTotal += exec
			s.mu.Unlock()
			// Replicate spans live on thread rep+1 (thread 0 is the job's
			// own lane): the queue wait, then the run annotated with the
			// per-phase split.
			tid := int64(t.rep) + 1
			t.job.trace.NameThread(tid, "rep "+strconv.Itoa(t.rep))
			t.job.trace.Add("queue_wait", "queue", tid, t.enqueued, wait, nil)
			t.job.trace.Add("run "+spec.Engine, "rep", tid, t0, exec, phaseArgs(rep.Phases))
			// Harvest the phase breakdown into telemetry, then strip it:
			// timings are measurements of this machine, and the assembled
			// payload must stay byte-identical to an unprofiled library
			// run of the same spec for hash-keyed caching to be sound.
			if err == nil && rep.Phases != nil {
				s.recordPhases(spec.Engine, rep.Phases)
				rep.Phases = nil
			}
		}
		s.completeRep(t.job, t.rep, rep, err)
	}
}

// runRep is the pool's panic boundary around one replicate. An engine
// panic — a bug, or injected worker-panic chaos — fails only its own job:
// the recover converts it into an error naming the panic value and the
// replicate index, the counter records it, and the worker survives to
// serve the next task. The boundary sits exactly at the Runner.RunRep
// seam so no job bookkeeping runs inside the recoverable region.
func (s *Server) runRep(ctx context.Context, r scenario.Runner, spec scenario.Spec, seed uint64, rep int) (out scenario.Rep, err error) {
	defer func() {
		if v := recover(); v != nil {
			s.panicsRecovered.Add(1)
			err = fmt.Errorf("simserve: panic in replicate %d: %v", rep, v)
		}
	}()
	if s.chaos.Fire(chaos.WorkerPanic) {
		panic("chaos: injected worker panic")
	}
	return r.RunRep(ctx, spec, seed)
}

// phaseArgs renders a replicate's phase breakdown as trace span arguments
// (milliseconds, matching the trace viewer's display unit).
func phaseArgs(b *prof.Breakdown) map[string]string {
	if b == nil {
		return nil
	}
	args := make(map[string]string, len(b.Seconds))
	for phase, sec := range b.Seconds {
		args["phase_"+phase+"_ms"] = strconv.FormatFloat(sec*1000, 'f', 3, 64)
	}
	return args
}

// completeRep records one replicate outcome and finalises the job when it
// was the last one. Replicate outcomes land at their replicate index, so
// the assembled result is independent of worker scheduling. Cancellations
// are kept apart from real failures: a cancelled replicate marks the job
// cancelled, while a real failure additionally cancels the job's context
// so sibling replicates stop instead of finishing work nobody will
// assemble.
func (s *Server) completeRep(j *job, rep int, out scenario.Rep, err error) {
	s.mu.Lock()
	if err != nil {
		if errors.Is(err, scenario.ErrCancelled) {
			j.cancelled = true
			if j.cancelMsg == "" {
				j.cancelMsg = err.Error()
			}
		} else {
			if j.errMsg == "" {
				j.errMsg = err.Error()
			}
			if j.cancelCause != nil {
				j.cancelCause(fmt.Errorf("sibling replicate failed: %v", err))
			}
		}
	}
	j.reps[rep] = out
	j.pending--
	if j.pending > 0 {
		s.mu.Unlock()
		return
	}
	errMsg := j.errMsg
	cancelled := j.cancelled
	s.mu.Unlock()

	// Last replicate: no other worker touches this job's reps anymore, so
	// assemble and encode outside the lock — a large result (many reps
	// with curves) must not stall every Submit/Job/metrics call while it
	// marshals. Cancelled jobs skip assembly: their reps are partial.
	var payload []byte
	var assembleDur time.Duration
	if errMsg == "" && !cancelled {
		t0 := time.Now()
		res, aerr := scenario.Assemble(j.spec, j.hash, j.reps)
		if aerr == nil {
			payload, aerr = json.Marshal(res)
		}
		assembleDur = time.Since(t0)
		s.stages[stageAssemble].Record(assembleDur)
		j.trace.Add("assemble", "job", 0, t0, assembleDur, nil)
		if aerr != nil {
			errMsg = aerr.Error()
		}
	}

	s.mu.Lock()
	j.errMsg = errMsg
	j.assembleTotal = assembleDur
	switch {
	case errMsg != "":
		// A real failure outranks cancellation: "a replicate failed" is
		// more actionable than "and then its siblings were stopped".
		j.status = StatusFailed
		j.payload = nil
		s.jobsFailed.Add(1)
	case cancelled:
		j.status = StatusCancelled
		j.errMsg = j.cancelMsg
		j.payload = nil
		s.jobsCancelled.Add(1)
	default:
		j.status = StatusDone
		j.payload = payload
		if s.chaos.Fire(chaos.CacheWriteError) {
			// Injected cache-write fault: the job still serves from its
			// own record (j.payload above); only the shared cache misses
			// out, which the next identical submission repairs by
			// re-running. This is the failure mode of a flaky cache
			// backend, and correctness must not depend on the write.
		} else {
			t0 := time.Now()
			s.cache.Put(j.hash, payload)
			s.stages[stageCacheWrite].Since(t0)
		}
		s.jobsServed.Add(1)
	}
	if j.deadlineTimer != nil {
		j.deadlineTimer.Stop()
	}
	if j.cancelCause != nil {
		j.cancelCause(nil)
	}
	delete(s.inflight, j.hash)
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.cfg.MaxJobs {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.mu.Unlock()
	close(j.done)
}

// Job returns the visible state of a job.
func (s *Server) Job(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	v := JobView{JobID: j.id, Hash: j.hash, Status: j.status, Error: j.errMsg}
	if j.status == StatusDone {
		v.Result = j.payload
	}
	return v, true
}

// ErrJobNotDone reports a trace request for a job still queued or running
// (HTTP 409: the trace only settles once the last replicate lands).
var ErrJobNotDone = errors.New("simserve: job has not finished; poll the job until done and retry")

// JobTrace returns a finished job's span trace — submit, per-replicate
// queue wait and execution (annotated with the step-phase split), and
// assembly. ok is false for unknown jobs; ErrJobNotDone is returned while
// the job is still queued or running. Failed jobs still export their
// trace: a trace of where a failure spent its time is exactly what the
// requester wants next.
func (s *Server) JobTrace(id string) (tr *prof.Trace, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, found := s.jobs[id]
	if !found {
		return nil, false, nil
	}
	if j.status != StatusDone && j.status != StatusFailed && j.status != StatusCancelled {
		return nil, true, ErrJobNotDone
	}
	return j.trace, true, nil
}

// jobStages returns a job's accumulated lifecycle-stage durations — queue
// wait and execution summed over replicates, assembly once — for the
// per-request slow-log breakdown.
func (s *Server) jobStages(id string) map[string]time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil
	}
	out := make(map[string]time.Duration, 3)
	if j.waitTotal > 0 {
		out[stageQueueWait] = j.waitTotal
	}
	if j.execTotal > 0 {
		out[stageExecute] = j.execTotal
	}
	if j.assembleTotal > 0 {
		out[stageAssemble] = j.assembleTotal
	}
	return out
}

// Result returns the cached payload for a scenario hash.
func (s *Server) Result(hash string) ([]byte, bool) {
	return s.cache.Get(hash)
}

// PutResult inserts a payload computed elsewhere into the result cache
// under its content hash — the coordinator's persistence seam: sweep-point
// payloads fetched from fleet workers land here, so the coordinator serves
// /v1/results/{hash} for every point it dispatched and its disk store
// accumulates the fleet's work across restarts. The disk commit is
// synchronous (a dropped spill here would cost a network re-fetch, not a
// local re-run) but runs on the caller — a dispatcher goroutine — never
// the worker pool. The caller owns handing in the exact canonical bytes;
// nothing is validated, matching the byte-identity contract everywhere
// else in the cache path.
func (s *Server) PutResult(hash string, payload []byte) {
	s.cache.put(hash, payload)
}

// seriesSuffix namespaces rendered series payloads in the result cache.
// Scenario hashes are fixed-width hex, so the suffix cannot collide with a
// result key.
const seriesSuffix = "#series"

// ErrNoSeries reports a cached result whose scenario observed nothing, so
// there is no series to stream (HTTP 404 with a pointed message).
var ErrNoSeries = errors.New("simserve: the scenario has no observe block, so no series was recorded")

// Series returns the canonical NDJSON rendering (obs.WriteNDJSON) of a
// cached result's aggregated series. Renderings are cached in the same LRU
// under a suffixed key, so repeated fetches are byte-identical without
// re-decoding the result payload; because the rendering is a deterministic
// function of the result — itself a deterministic function of the spec —
// an eviction and re-render also reproduces the exact bytes. It returns
// ok=false when no result is cached for the hash, and ErrNoSeries when the
// result exists but its scenario observed nothing.
func (s *Server) Series(hash string) (payload []byte, ok bool, err error) {
	if b, ok := s.cache.Get(hash + seriesSuffix); ok {
		s.seriesServed.Add(1)
		return b, true, nil
	}
	res, ok := s.cache.Get(hash)
	if !ok {
		return nil, false, nil
	}
	var decoded scenario.Result
	if err := json.Unmarshal(res, &decoded); err != nil {
		return nil, true, fmt.Errorf("simserve: corrupt cached result for %s: %w", hash, err)
	}
	if len(decoded.Series) == 0 {
		return nil, true, ErrNoSeries
	}
	var buf bytes.Buffer
	t0 := time.Now()
	if err := obs.WriteNDJSON(&buf, decoded.Series); err != nil {
		return nil, true, fmt.Errorf("simserve: %w", err)
	}
	b := buf.Bytes()
	s.cache.Put(hash+seriesSuffix, b)
	s.stages[stageSeriesRender].Since(t0)
	s.seriesServed.Add(1)
	return b, true, nil
}

// Wait blocks until the job finishes (or ctx expires) and returns its
// payload. Failed jobs return an error carrying the job's failure message.
func (s *Server) Wait(ctx context.Context, id string) ([]byte, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("simserve: unknown job %q", id)
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-j.done:
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch j.status {
	case StatusDone:
		return j.payload, nil
	case StatusCancelled:
		return nil, fmt.Errorf("simserve: job %s cancelled: %s", j.id, j.errMsg)
	default:
		return nil, fmt.Errorf("simserve: job %s failed: %s", j.id, j.errMsg)
	}
}

// QueueDepth returns the number of replicate tasks waiting for a worker.
func (s *Server) QueueDepth() int {
	return s.queue.len()
}

// shutdownResidual bounds how long Shutdown waits for workers after
// cancelling every in-flight job: the engines' amortized poll notices the
// cancellation within a check interval, so this covers one interval of
// the slowest step plus scheduling noise — not a second drain budget.
const shutdownResidual = 5 * time.Second

// Shutdown stops accepting submissions, drains queued work and waits for
// the pool and any sweep dispatchers to exit. If ctx expires before the
// drain finishes, Shutdown escalates: it cancels every in-flight job's
// context (engines stop mid-replicate at their next poll, jobs finish as
// cancelled) and grants a short residual wait before returning ctx's
// error if workers still have not exited. Sweep dispatchers cannot hang
// the drain: their point submissions fail with errShutdown once the
// server is closed, and points already queued complete because the pool
// drains the queue.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.queue.close()
	}
	s.mu.Unlock()
	// Queued spill writes are flushed to disk on the way out — whichever
	// path returns — so a clean restart recovers everything computed.
	defer s.cache.Close()
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.sweepWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
	}
	// Drain budget exhausted: abandon graceful completion and cancel
	// everything still running.
	s.mu.Lock()
	for _, j := range s.inflight {
		if j.cancelCause != nil {
			j.cancelCause(errShutdown)
		}
	}
	s.mu.Unlock()
	select {
	case <-drained:
	case <-time.After(shutdownResidual):
	}
	return ctx.Err()
}
