package simserve

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"mobilenet/internal/scenario"
	"mobilenet/internal/sweep"
)

// TestMalformedJSONBodies: syntactically broken bodies on both submit
// endpoints must come back 400 with a JSON error payload, not 500 or a
// hang.
func TestMalformedJSONBodies(t *testing.T) {
	t.Parallel()
	_, ts := testServer(t, Config{Workers: 1})
	for _, path := range []string{"/v1/run", "/v1/sweeps"} {
		for _, body := range []string{
			`{"engine":`, // truncated
			`not json at all`,
			`{"engine":"broadcast","nodes":256,"agents":8}{"engine":"gossip"}`, // trailing data
			``, // empty body
		} {
			resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			ct := resp.Header.Get("Content-Type")
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("POST %s with body %q: status %d, want 400", path, body, resp.StatusCode)
			}
			if ct != "application/json" {
				t.Errorf("POST %s error content-type %q", path, ct)
			}
		}
	}
}

// TestSweepExceedingMaxSweepPoints: a sweep expanding past the server's
// point budget is rejected synchronously (HTTP 400), both programmatically
// and over HTTP.
func TestSweepExceedingMaxSweepPoints(t *testing.T) {
	t.Parallel()
	s, ts := testServer(t, Config{Workers: 1, MaxSweepPoints: 2})
	sp := sweep.Spec{
		Base: scenario.Spec{Engine: scenario.EngineGossip, Nodes: 256, Agents: 8, Seed: 1},
		Axes: []sweep.Axis{{Field: "seed", Values: []any{int64(1), int64(2), int64(3)}}},
	}
	if _, err := s.SubmitSweep(sp); err == nil || !strings.Contains(err.Error(), "exceeding") {
		t.Errorf("3-point sweep accepted by a 2-point server: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(
		`{"base":{"engine":"gossip","nodes":256,"agents":8,"seed":1},
		  "axes":[{"field":"seed","values":[1,2,3]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized sweep over HTTP: status %d, want 400", resp.StatusCode)
	}
	// An in-budget sweep still runs on the same server.
	sp.Axes = []sweep.Axis{{Field: "seed", Values: []any{int64(1), int64(2)}}}
	ticket, err := s.SubmitSweep(sp)
	if err != nil {
		t.Fatalf("in-budget sweep rejected: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.WaitSweep(ctx, ticket.SweepID); err != nil {
		t.Fatal(err)
	}
}

// TestWaitWithCancelledContext: Wait on an already-cancelled context
// returns the context's error promptly instead of blocking on the job, and
// the job itself still completes and stays fetchable.
func TestWaitWithCancelledContext(t *testing.T) {
	t.Parallel()
	s, _ := testServer(t, Config{Workers: 1})
	ticket, err := s.Submit(scenario.Spec{Engine: scenario.EngineGossip, Nodes: 256, Agents: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := s.Wait(cancelled, ticket.JobID); err != context.Canceled {
		t.Errorf("Wait(cancelled ctx) = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled Wait blocked for %v", elapsed)
	}
	// The job is unaffected: a live context still gets the payload.
	ctx, cancelLive := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelLive()
	if _, err := s.Wait(ctx, ticket.JobID); err != nil {
		t.Fatal(err)
	}
	// Unknown jobs surface their own error, cancelled context or not.
	if _, err := s.Wait(cancelled, "job-none"); err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Errorf("Wait(unknown job) = %v", err)
	}
}

// TestWaitSweepWithCancelledContext mirrors the scenario Wait test for the
// sweep waiter.
func TestWaitSweepWithCancelledContext(t *testing.T) {
	t.Parallel()
	s, _ := testServer(t, Config{Workers: 1})
	ticket, err := s.SubmitSweep(sweep.Spec{
		Base: scenario.Spec{Engine: scenario.EngineGossip, Nodes: 256, Agents: 8, Seed: 1},
		Axes: []sweep.Axis{{Field: "seed", Values: []any{int64(4), int64(5)}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.WaitSweep(cancelled, ticket.SweepID); err != context.Canceled {
		t.Errorf("WaitSweep(cancelled ctx) = %v, want context.Canceled", err)
	}
	ctx, cancelLive := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelLive()
	if _, err := s.WaitSweep(ctx, ticket.SweepID); err != nil {
		t.Fatal(err)
	}
}
