package simserve

import (
	"testing"
	"time"
)

// mark builds a recognisable task: tests identify pops by replicate index.
func mark(rep int) task { return task{rep: rep, enqueued: time.Now()} }

func popRep(t *testing.T, q *fairQueue) int {
	t.Helper()
	tk, ok := q.pop()
	if !ok {
		t.Fatal("pop returned closed on a non-empty queue")
	}
	return tk.rep
}

// TestFairQueueInterleavesClients pins the deficit-round-robin contract:
// a flood from one client does not starve another — the late, small
// client is served within one round of the ring, not behind the flood.
func TestFairQueueInterleavesClients(t *testing.T) {
	t.Parallel()
	q := newFairQueue(16, nil)
	q.tryPush("a", []task{mark(1), mark(2), mark(3)})
	q.tryPush("b", []task{mark(10)})
	got := []int{popRep(t, q), popRep(t, q), popRep(t, q), popRep(t, q)}
	want := []int{1, 10, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v (b starved behind a's flood)", got, want)
		}
	}
}

// TestFairQueueWeights: a weight-2 client is served two tasks per ring
// visit, so weights trade exact fairness for configured shares.
func TestFairQueueWeights(t *testing.T) {
	t.Parallel()
	q := newFairQueue(16, map[string]int{"a": 2})
	q.tryPush("a", []task{mark(1), mark(2), mark(3)})
	q.tryPush("b", []task{mark(10), mark(11)})
	var got []int
	for i := 0; i < 5; i++ {
		got = append(got, popRep(t, q))
	}
	want := []int{1, 2, 10, 3, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// TestFairQueueAdmissionAllOrNothing: a batch that does not fit leaves the
// queue untouched — no partial jobs.
func TestFairQueueAdmissionAllOrNothing(t *testing.T) {
	t.Parallel()
	q := newFairQueue(2, nil)
	if q.tryPush("a", []task{mark(1), mark(2), mark(3)}) {
		t.Fatal("3 tasks admitted into depth 2")
	}
	if q.len() != 0 {
		t.Fatalf("rejected push left %d tasks behind", q.len())
	}
	if !q.tryPush("a", []task{mark(1), mark(2)}) {
		t.Fatal("exact-fit push rejected")
	}
	if q.tryPush("b", []task{mark(9)}) {
		t.Fatal("push into a full queue admitted")
	}
}

// TestFairQueueCloseDrains: close stops admission but queued tasks still
// drain; pop reports closed only once empty.
func TestFairQueueCloseDrains(t *testing.T) {
	t.Parallel()
	q := newFairQueue(4, nil)
	q.tryPush("a", []task{mark(1), mark(2)})
	q.close()
	if q.tryPush("a", []task{mark(3)}) {
		t.Fatal("push admitted after close")
	}
	if popRep(t, q) != 1 || popRep(t, q) != 2 {
		t.Fatal("queued tasks lost on close")
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on a closed, drained queue returned a task")
	}
}

// TestRateLimiterBucket pins the token-bucket arithmetic: burst tokens up
// front, refill at the configured rate, and the returned wait names when
// the next token accrues.
func TestRateLimiterBucket(t *testing.T) {
	t.Parallel()
	l := newRateLimiter(1, 2)
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("c", now); !ok {
			t.Fatalf("burst token %d denied", i)
		}
	}
	ok, wait := l.allow("c", now)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if wait <= 0 || wait > time.Second+time.Millisecond {
		t.Fatalf("wait = %v, want ~1s", wait)
	}
	if ok, _ := l.allow("c", now.Add(time.Second)); !ok {
		t.Fatal("refilled token denied")
	}
	// Independent buckets: another client is unaffected.
	if ok, _ := l.allow("d", now); !ok {
		t.Fatal("fresh client denied")
	}
}

// TestRateLimiterOff: rate 0 disables limiting via a nil limiter.
func TestRateLimiterOff(t *testing.T) {
	t.Parallel()
	if l := newRateLimiter(0, 5); l != nil {
		t.Fatal("rate 0 built a limiter")
	}
	var l *rateLimiter
	if ok, _ := l.allow("anyone", time.Now()); !ok {
		t.Fatal("nil limiter denied")
	}
}

// TestRateLimiterBounded: the bucket map cannot grow past maxRateClients
// no matter how many distinct ids arrive.
func TestRateLimiterBounded(t *testing.T) {
	t.Parallel()
	l := newRateLimiter(1, 1)
	now := time.Unix(1000, 0)
	for i := 0; i < maxRateClients+64; i++ {
		l.allow(string(rune('a'+i%26))+string(rune('0'+i/26%10))+string(rune(i)), now.Add(time.Duration(i)))
	}
	l.mu.Lock()
	n := len(l.buckets)
	l.mu.Unlock()
	if n > maxRateClients {
		t.Fatalf("%d buckets retained, bound is %d", n, maxRateClients)
	}
}
