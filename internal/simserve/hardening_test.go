package simserve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"mobilenet/internal/chaos"
	"mobilenet/internal/scenario"
)

// longSpec is a scenario that runs long enough (tens of seconds: 32768
// agents broadcasting at radius 1 across a sparse 2048x2048 grid under a
// 256M step cap) that deadline and shutdown cancellation always catch it
// mid-run — the replicate must outlast every deadline in this file even at
// the incremental labeller's per-step cost, or queue-occupancy assertions
// race against early completion. (The previous 4-agent/256x256 shape
// reached full broadcast in ~30ms once the labeller went incremental and
// made the shed test flaky.)
// Seed varies so concurrent tests never coalesce onto each other's jobs.
func longSpec(seed uint64) scenario.Spec {
	return scenario.Spec{Engine: "broadcast", Nodes: 1 << 22, Agents: 1 << 15,
		Radius: 1, Seed: seed, MaxSteps: 1 << 28}
}

// fastSpec completes in milliseconds.
func fastSpec(seed uint64) scenario.Spec {
	return scenario.Spec{Engine: "broadcast", Nodes: 256, Agents: 8, Seed: seed}
}

func mustParseChaos(t *testing.T, spec string) *chaos.Injector {
	t.Helper()
	inj, err := chaos.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// TestServerSurvivesEnginePanic is the panic-isolation acceptance
// criterion: an injected worker panic fails ONLY its own job — the worker
// survives, the panic is counted, and the next job completes normally.
func TestServerSurvivesEnginePanic(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 2, Chaos: mustParseChaos(t, chaos.WorkerPanic+":1x1")})
	defer s.Shutdown(context.Background())

	ticket, err := s.Submit(fastSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelCtx := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelCtx()
	_, err = s.Wait(ctx, ticket.JobID)
	if err == nil || !strings.Contains(err.Error(), "panic in replicate") {
		t.Fatalf("panicked job error = %v, want a panic-naming failure", err)
	}
	if v, _ := s.Job(ticket.JobID); v.Status != StatusFailed {
		t.Fatalf("panicked job status = %s, want failed", v.Status)
	}
	if got := s.panicsRecovered.Load(); got != 1 {
		t.Fatalf("panics_recovered = %d, want 1", got)
	}

	// The pool is intact: the x1 cap spent the injection, so the next job
	// runs clean on the same workers.
	ticket2, err := s.Submit(fastSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(ctx, ticket2.JobID); err != nil {
		t.Fatalf("job after recovered panic failed: %v", err)
	}
}

// TestDeadlineCancelsMidRun is the deadline acceptance criterion: a job
// whose deadline expires mid-replicate stops within one engine check
// interval, reports status "cancelled" with the deadline in the message,
// and caches nothing.
func TestDeadlineCancelsMidRun(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())

	ticket, err := s.SubmitWithOptions(longSpec(3), SubmitOptions{Deadline: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelCtx := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelCtx()
	_, err = s.Wait(ctx, ticket.JobID)
	if err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("deadline-expired job error = %v, want a cancellation", err)
	}
	v, ok := s.Job(ticket.JobID)
	if !ok || v.Status != StatusCancelled {
		t.Fatalf("job status = %s, want cancelled", v.Status)
	}
	if !strings.Contains(v.Error, "deadline") {
		t.Fatalf("cancellation message %q does not name the deadline", v.Error)
	}
	if got := s.jobsCancelled.Load(); got != 1 {
		t.Fatalf("jobs_cancelled = %d, want 1", got)
	}
	if _, cached := s.Result(ticket.Hash); cached {
		t.Fatal("cancelled job cached a (partial) payload")
	}
}

// TestDefaultDeadlineApplies: a server with DefaultDeadline bounds jobs
// that asked for nothing.
func TestDefaultDeadlineApplies(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 2, DefaultDeadline: 30 * time.Millisecond})
	defer s.Shutdown(context.Background())
	ticket, err := s.Submit(longSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelCtx := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelCtx()
	if _, err := s.Wait(ctx, ticket.JobID); err == nil {
		t.Fatal("job outlived the server's default deadline")
	}
	if v, _ := s.Job(ticket.JobID); v.Status != StatusCancelled {
		t.Fatalf("job status = %s, want cancelled", v.Status)
	}
}

// TestMaxDeadlineCapsRequests: MaxDeadline caps explicit requests and
// bounds deadline-less jobs.
func TestMaxDeadlineCapsRequests(t *testing.T) {
	t.Parallel()
	s := New(Config{MaxDeadline: 40 * time.Millisecond})
	defer s.Shutdown(context.Background())
	if d := s.effectiveDeadline(0); d != 40*time.Millisecond {
		t.Fatalf("unbounded request resolved to %v, want the cap", d)
	}
	if d := s.effectiveDeadline(time.Hour); d != 40*time.Millisecond {
		t.Fatalf("over-cap request resolved to %v, want the cap", d)
	}
	if d := s.effectiveDeadline(10 * time.Millisecond); d != 10*time.Millisecond {
		t.Fatalf("in-cap request resolved to %v, want it honoured", d)
	}
}

// TestAbandonedClientFreesWorkers is the worker-liveness acceptance
// criterion: when a job's deadline expires, its running replicate stops
// and its queued replicates are fast-skipped without running, so the pool
// promptly serves the next client instead of finishing abandoned work.
func TestAbandonedClientFreesWorkers(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())

	// One worker, three long replicates: the first runs, two wait. The
	// deadline fires mid-first-replicate; the queued two must skip.
	abandoned := longSpec(5)
	abandoned.Reps = 3
	ticket, err := s.SubmitWithOptions(abandoned, SubmitOptions{Deadline: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := s.Submit(fastSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelCtx := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelCtx()
	t0 := time.Now()
	if _, err := s.Wait(ctx, fast.JobID); err != nil {
		t.Fatalf("job behind an abandoned one failed: %v", err)
	}
	// Generous bound: three full ~seconds-long replicates would blow it,
	// one cancelled replicate plus two skips and a fast job never will.
	if wall := time.Since(t0); wall > 10*time.Second {
		t.Fatalf("abandoned job held the worker for %v", wall)
	}
	if _, err := s.Wait(ctx, ticket.JobID); err == nil {
		t.Fatal("abandoned job reported success")
	}
	if v, _ := s.Job(ticket.JobID); v.Status != StatusCancelled {
		t.Fatalf("abandoned job status = %s, want cancelled", v.Status)
	}
}

// TestSiblingFailureCancelsReplicates: one replicate's real failure
// cancels the job's context so queued siblings skip; the job reports the
// failure, not the cancellations.
func TestSiblingFailureCancelsReplicates(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 1, Chaos: mustParseChaos(t, chaos.WorkerPanic+":1x1")})
	defer s.Shutdown(context.Background())
	spec := longSpec(7)
	spec.Reps = 3
	ticket, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelCtx := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelCtx()
	t0 := time.Now()
	_, err = s.Wait(ctx, ticket.JobID)
	if err == nil || !strings.Contains(err.Error(), "panic in replicate") {
		t.Fatalf("job error = %v, want the panic failure to win", err)
	}
	if v, _ := s.Job(ticket.JobID); v.Status != StatusFailed {
		t.Fatalf("status = %s, want failed (failure outranks cancellation)", v.Status)
	}
	if wall := time.Since(t0); wall > 10*time.Second {
		t.Fatalf("doomed job still ran its siblings for %v", wall)
	}
}

// TestCacheWriteErrorChaosDegradesGracefully: a dropped cache write must
// not corrupt anything — the job itself still serves its payload, only
// the shared cache misses out, and a resubmission re-runs.
func TestCacheWriteErrorChaosDegradesGracefully(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 2, Chaos: mustParseChaos(t, chaos.CacheWriteError+":1")})
	defer s.Shutdown(context.Background())
	ticket, err := s.Submit(fastSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancelCtx := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelCtx()
	payload, err := s.Wait(ctx, ticket.JobID)
	if err != nil || len(payload) == 0 {
		t.Fatalf("job behind a dropped cache write: payload %d bytes, err %v", len(payload), err)
	}
	if _, cached := s.Result(ticket.Hash); cached {
		t.Fatal("payload cached despite the injected write error")
	}
	ticket2, err := s.Submit(fastSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	if ticket2.Cached {
		t.Fatal("resubmission claims a cache hit after the dropped write")
	}
	if payload2, err := s.Wait(ctx, ticket2.JobID); err != nil {
		t.Fatal(err)
	} else if string(payload2) != string(payload) {
		t.Fatal("re-run payload diverged from the first run")
	}
}

// TestShutdownEscalatesPastDrainBudget: an expired drain budget cancels
// in-flight jobs instead of waiting out their replicates; they finish as
// cancelled and Shutdown returns the budget's error.
func TestShutdownEscalatesPastDrainBudget(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 1})
	ticket, err := s.Submit(longSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick the replicate up so the escalation hits
	// a genuinely running engine.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, _ := s.Job(ticket.JobID); v.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replicate never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancelCtx := context.WithCancel(context.Background())
	cancelCtx() // zero drain budget: escalate immediately
	t0 := time.Now()
	if err := s.Shutdown(ctx); err != context.Canceled {
		t.Fatalf("Shutdown = %v, want context.Canceled", err)
	}
	// The engine notices within one check interval — nowhere near the
	// replicate's natural runtime or the residual bound.
	if wall := time.Since(t0); wall > shutdownResidual {
		t.Fatalf("escalated shutdown took %v", wall)
	}
	if v, _ := s.Job(ticket.JobID); v.Status != StatusCancelled {
		t.Fatalf("in-flight job after escalated shutdown = %s, want cancelled", v.Status)
	}
}

// TestRateLimitSheds429 pins the HTTP shed path: an over-limit client
// gets 429 with a Retry-After before the body is even read, the shed
// counter names the reason, and other clients are unaffected.
func TestRateLimitSheds429(t *testing.T) {
	t.Parallel()
	s, ts := testServer(t, Config{Workers: 2, RateLimit: 0.001, RateBurst: 1})
	if _, code := postSpec(t, ts, fastSpec(10)); code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("first submission = %d", code)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/v1/run", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit submission = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := s.shed[shedRateLimited].Load(); got != 1 {
		t.Fatalf("shed{rate_limited} = %d, want 1", got)
	}
	// A different client id owns a fresh bucket.
	req2, _ := http.NewRequest("POST", ts.URL+"/v1/run", strings.NewReader(`{"engine":"broadcast","nodes":256,"agents":8,"seed":11}`))
	req2.Header.Set(clientIDHeader, "someone-else")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusTooManyRequests {
		t.Fatal("rate limit leaked across client ids")
	}
}

// TestQueueFullSheds503RetryAfter: a full queue answers 503 with a
// Retry-After hint and counts the shed; the sweep dispatcher's internal
// retries never touch that counter (it submits through the library path).
func TestQueueFullSheds503RetryAfter(t *testing.T) {
	t.Parallel()
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 1})
	// Occupy the worker, then fill the queue's single slot.
	running, err := s.SubmitWithOptions(longSpec(12), SubmitOptions{Deadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, _ := s.Job(running.JobID); v.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.SubmitWithOptions(longSpec(13), SubmitOptions{Deadline: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(longSpec(14))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		v1, _ := s.Job(running.JobID)
		t.Fatalf("submission into a full queue = %d, want 503 (job1 status=%s err=%q)", resp.StatusCode, v1.Status, v1.Error)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	if got := s.shed[shedQueueFull].Load(); got != 1 {
		t.Fatalf("shed{queue_full} = %d, want 1", got)
	}
}

// TestDeadlineHeaderParsing: the X-Deadline-Ms header threads a deadline
// into the job; malformed values are a 400, not a silent default.
func TestDeadlineHeaderParsing(t *testing.T) {
	t.Parallel()
	s, ts := testServer(t, Config{Workers: 2})
	body, err := json.Marshal(longSpec(15))
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/v1/run", strings.NewReader(string(body)))
	req.Header.Set(deadlineHeader, "30")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var ticket Ticket
	if err := json.NewDecoder(resp.Body).Decode(&ticket); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v := pollJob(t, ts, ticket.JobID); v.Status != StatusCancelled {
		t.Fatalf("job with a 30ms header deadline = %s, want cancelled", v.Status)
	}
	_ = s

	for _, bad := range []string{"0", "-5", "soon", "1.5"} {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/run", strings.NewReader(string(body)))
		req.Header.Set(deadlineHeader, bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("deadline %q accepted with %d, want 400", bad, resp.StatusCode)
		}
	}
}
