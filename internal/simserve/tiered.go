package simserve

import (
	"sync"
	"sync/atomic"

	"mobilenet/internal/store"
)

// tieredCache layers the in-memory LRU over an optional disk-backed
// content-addressed store (internal/store). Reads are read-through: a
// memory miss probes the disk tier and promotes a hit back into the LRU,
// so a restarted daemon re-warms its hot set on demand instead of
// re-running simulations. Writes are write-behind: the LRU insert is
// synchronous (the next identical submission must hit), while the disk
// commit — an fsync — rides a bounded queue drained by one writer
// goroutine, so a slow disk never stalls the worker that just finished a
// replicate. When the queue is full the disk write is dropped and
// counted: exactly the flaky-cache-backend posture the chaos harness
// already pins — correctness never depends on a cache write landing.
//
// With no disk tier (disk == nil) every method degrades to the plain LRU,
// costing one nil check — the pre-store behaviour, byte for byte.
type tieredCache struct {
	mem  *lru
	disk *store.Store

	writes        chan spillWrite
	writerWG      sync.WaitGroup
	sendMu        sync.RWMutex // guards writes against Close
	closed        bool         // under sendMu
	droppedWrites atomic.Uint64
}

// spillWrite is one queued disk commit; a nil-payload entry with ack set
// is a flush barrier (the writer closes ack when it reaches it).
type spillWrite struct {
	key     string
	payload []byte
	ack     chan struct{}
}

// spillQueueDepth bounds pending disk commits. Payloads are typically a
// few KB; at the default bound the queue holds well under the default
// LRU's worth of bytes, and a full queue sheds to the
// dropped-writes counter rather than blocking workers.
const spillQueueDepth = 256

func newTieredCache(capacity int, disk *store.Store) *tieredCache {
	c := &tieredCache{mem: newLRU(capacity), disk: disk}
	if disk != nil {
		c.writes = make(chan spillWrite, spillQueueDepth)
		c.writerWG.Add(1)
		go c.writer()
	}
	return c
}

func (c *tieredCache) writer() {
	defer c.writerWG.Done()
	for w := range c.writes {
		if w.ack != nil {
			close(w.ack)
			continue
		}
		// A failed commit already counted in the store's WriteErrors; the
		// entry is simply absent and the next identical submission re-runs.
		_ = c.disk.Put(w.key, w.payload)
	}
}

// Get probes memory first, then the disk tier; a disk hit is promoted into
// the LRU so the next fetch is a memory hit.
func (c *tieredCache) Get(key string) ([]byte, bool) {
	if payload, ok := c.mem.Get(key); ok {
		return payload, true
	}
	if c.disk == nil {
		return nil, false
	}
	payload, ok := c.disk.Get(key)
	if !ok {
		return nil, false
	}
	c.mem.Put(key, payload)
	return payload, true
}

// Put inserts into the LRU synchronously and queues the disk commit. A
// straggler completing after Close (an escalated shutdown abandoned its
// job mid-flight) commits inline instead — nothing races the closed
// queue, and the payload still lands on disk for the next boot.
func (c *tieredCache) Put(key string, payload []byte) {
	c.mem.Put(key, payload)
	if c.disk == nil {
		return
	}
	c.sendMu.RLock()
	if c.closed {
		c.sendMu.RUnlock()
		_ = c.disk.Put(key, payload)
		return
	}
	select {
	case c.writes <- spillWrite{key: key, payload: payload}:
	default:
		c.droppedWrites.Add(1)
	}
	c.sendMu.RUnlock()
}

// Len returns the in-memory entry count (the gauge the pre-store
// mobiserved_cache_entries metric always meant; the disk tier has its own
// entries/bytes gauges).
func (c *tieredCache) Len() int {
	return c.mem.Len()
}

// Flush blocks until every disk commit queued before the call has been
// written. Tests and shutdown use it; request paths never do.
func (c *tieredCache) Flush() {
	if c.disk == nil {
		return
	}
	c.sendMu.RLock()
	if c.closed {
		// Close already drained the queue; nothing is pending.
		c.sendMu.RUnlock()
		return
	}
	ack := make(chan struct{})
	c.writes <- spillWrite{ack: ack}
	c.sendMu.RUnlock()
	<-ack
}

// Close drains and stops the writer goroutine; queued commits are written
// before it returns, so nothing computed before shutdown is lost. The
// cache stays readable (memory and disk) after Close; only spilling
// stops. Safe to call more than once.
func (c *tieredCache) Close() {
	if c.disk == nil {
		return
	}
	c.sendMu.Lock()
	alreadyClosed := c.closed
	c.closed = true
	if !alreadyClosed {
		close(c.writes)
	}
	c.sendMu.Unlock()
	if !alreadyClosed {
		c.writerWG.Wait()
	}
}

// put bypasses the write-behind queue: the disk commit happens inline.
// The coordinator uses it when persisting a payload fetched from a fleet
// worker — losing that to a full queue would mean re-fetching over the
// network rather than re-running locally, and the synchronous cost is
// paid on a dispatcher goroutine, never the worker-pool hot path.
func (c *tieredCache) put(key string, payload []byte) {
	c.mem.Put(key, payload)
	if c.disk != nil {
		_ = c.disk.Put(key, payload)
	}
}
