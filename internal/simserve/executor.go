package simserve

import (
	"context"
	"fmt"

	"mobilenet/internal/sweep"
)

// PointExecutor is the sweep dispatcher's execution seam: one call turns a
// distinct sweep point into its encoded result payload. The default (nil
// Config.Executor) implementation runs points on the server's own worker
// pool through the ordinary submit path; a coordinator plugs in a
// fleet-sharding implementation (internal/cluster) that sends each point
// to the worker rendezvous hashing elects for its content hash. The
// dispatcher neither knows nor cares which — progress accounting, error
// semantics and the in-flight bound live above the seam, execution below
// it.
type PointExecutor interface {
	// ExecutePoint returns the payload for the point's canonical spec —
	// byte-identical to what a direct submission of the spec would serve —
	// and whether it was answered without creating new work (a cache hit
	// wherever the point executed). Implementations should honour
	// progress.Cancelled as a bail-early signal and call progress.Started
	// once when real execution begins (cached answers never start).
	ExecutePoint(p sweep.Point, opts SubmitOptions, progress PointProgress) (payload []byte, cached bool, err error)
}

// PointProgress carries the dispatcher's callbacks into an executor. Both
// functions are safe for concurrent use and cheap; executors may call
// Cancelled as often as they like.
type PointProgress struct {
	// Cancelled reports that the sweep has failed and further work is
	// wasted; executors should return promptly (the error is discarded
	// for points that never started).
	Cancelled func() bool
	// Started marks the point as running in the sweep's progress view.
	Started func()
}

// Concurrency is the optional executor interface that widens the
// dispatcher's in-flight bound. The local executor is bounded by the
// worker pool it feeds, but a fleet executor multiplexes N remote pools
// and would idle them at the local bound.
type Concurrency interface {
	// PointConcurrency returns the number of points the executor wants in
	// flight at once; values < 1 defer to the server's worker count.
	PointConcurrency() int
}

// localExecutor is the default PointExecutor: points ride the ordinary
// submit path — answered from the tiered cache, coalesced onto an
// identical in-flight job, or executed on this server's pool — exactly as
// if each had been POSTed individually.
type localExecutor struct{ s *Server }

func (e localExecutor) ExecutePoint(p sweep.Point, opts SubmitOptions, progress PointProgress) ([]byte, bool, error) {
	// A "cached" ticket can race cache eviction before the payload read;
	// resubmitting simply runs the point again, so retry a bounded number
	// of times before giving up.
	for attempt := 0; ; attempt++ {
		ticket, err := e.s.submitPoint(p.Spec, opts, progress.Cancelled)
		if err != nil {
			return nil, false, err
		}
		if ticket.Cached {
			if payload, ok := e.s.cache.Get(ticket.Hash); ok {
				return payload, true, nil
			}
			if attempt >= 2 {
				return nil, false, fmt.Errorf("simserve: cached result for %s evicted before it could be read", ticket.Hash)
			}
			continue
		}
		progress.Started()
		payload, err := e.s.Wait(context.Background(), ticket.JobID)
		if err != nil {
			return nil, false, err
		}
		return payload, false, nil
	}
}

// executor resolves the configured PointExecutor, defaulting to local
// execution.
func (s *Server) executor() PointExecutor {
	if s.cfg.Executor != nil {
		return s.cfg.Executor
	}
	return localExecutor{s}
}

// executorConcurrency resolves the dispatcher's in-flight point bound.
func (s *Server) executorConcurrency(exec PointExecutor) int {
	if c, ok := exec.(Concurrency); ok {
		if n := c.PointConcurrency(); n > 0 {
			return n
		}
	}
	return s.cfg.Workers
}
