package simserve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// ctxKey is the private type for this package's context keys.
type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyStages
)

// requestIDHeader is the request-id header the service honors on requests
// and echoes on every response. Clients that set it can correlate their
// own logs with the daemon's; clients that do not still get a
// process-unique id back.
const requestIDHeader = "X-Request-Id"

// maxRequestIDLen bounds an honored client-supplied request id; ids are
// log and trace annotations, and an unbounded one is a log-injection
// vector. Longer ids are replaced, not truncated, so an echoed id is
// always exactly what the logs carry.
const maxRequestIDLen = 128

// newRequestID generates a process-unique request id: the server's start
// time in hex plus a sequence number, matching the shape the daemon's
// request log historically used.
func (s *Server) newRequestID() string {
	return fmt.Sprintf("%x-%d", s.reqBase, s.reqSeq.Add(1))
}

// requestID returns the id for one incoming request: the client's
// X-Request-Id when present (and sane), otherwise a generated one.
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get(requestIDHeader); id != "" && len(id) <= maxRequestIDLen && isPrintableASCII(id) {
		return id
	}
	return s.newRequestID()
}

// isPrintableASCII rejects control bytes and non-ASCII in client ids so an
// echoed header cannot smuggle terminal escapes into logs.
func isPrintableASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] > 0x7e {
			return false
		}
	}
	return true
}

// clientIDHeader lets cooperating clients name themselves for fair
// queuing and rate limiting; without it the client id falls back to the
// connection's remote host. Self-reported ids are an honest-client
// mechanism — an adversary splitting itself across ids gains queue
// shares but each id is rate-limited independently.
const clientIDHeader = "X-Client-Id"

// maxClientIDLen bounds an honored client id, same posture as request ids.
const maxClientIDLen = 64

// clientID resolves one request's client identity: the sanitized
// X-Client-Id header when present, else the remote address's host part
// (so all connections from one machine share a lane), else the raw
// remote address.
func clientID(r *http.Request) string {
	if id := r.Header.Get(clientIDHeader); id != "" && len(id) <= maxClientIDLen && isPrintableASCII(id) {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// deadlineHeader carries a per-request deadline in whole milliseconds.
// The server's MaxDeadline still caps the result; an unparseable or
// non-positive value is a 400, not a silent fallback — a client that
// states a deadline means it.
const deadlineHeader = "X-Deadline-Ms"

// deadlineFrom parses the request's deadline header. Zero with a nil
// error means no deadline was requested (the server default applies).
func deadlineFrom(r *http.Request) (time.Duration, error) {
	h := r.Header.Get(deadlineHeader)
	if h == "" {
		return 0, nil
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ms <= 0 {
		return 0, fmt.Errorf("simserve: %s must be a positive integer of milliseconds, got %q", deadlineHeader, h)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// withRequestID returns ctx carrying the request id.
func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyRequestID, id)
}

// requestIDFrom extracts the request id, or "" outside a request.
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// StageRecorder accumulates the request-lifecycle stage durations observed
// while serving one HTTP request. The service's stage histograms aggregate
// across all requests; the recorder is the per-request view — a handler
// that learns stage durations adds them here (the submit path records its
// admission time, and the job poll that observes a finished job merges the
// job's queue-wait/execute/assemble totals), and the embedding daemon
// attaches the breakdown to its slow-request log line, so a slow poll says
// WHERE the served job's time went rather than just how slow the poll was.
//
// All methods are nil-receiver safe: handlers record unconditionally and
// requests without a recorder pay one nil check.
type StageRecorder struct {
	mu sync.Mutex
	d  map[string]time.Duration
}

// NewStageRecorder returns an empty recorder.
func NewStageRecorder() *StageRecorder { return &StageRecorder{} }

// Add accumulates d under the named stage; zero and negative durations
// are dropped so absent stages stay absent from the breakdown.
func (r *StageRecorder) Add(stage string, d time.Duration) {
	if r == nil || d <= 0 {
		return
	}
	r.mu.Lock()
	if r.d == nil {
		r.d = make(map[string]time.Duration, 4)
	}
	r.d[stage] += d
	r.mu.Unlock()
}

// Stages returns a copy of the accumulated per-stage durations, or nil
// when nothing was recorded.
func (r *StageRecorder) Stages() map[string]time.Duration {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.d) == 0 {
		return nil
	}
	out := make(map[string]time.Duration, len(r.d))
	for k, v := range r.d {
		out[k] = v
	}
	return out
}

// WithStageRecorder returns ctx carrying rec, for the embedding daemon to
// install before delegating to the service handler.
func WithStageRecorder(ctx context.Context, rec *StageRecorder) context.Context {
	return context.WithValue(ctx, ctxKeyStages, rec)
}

// stageRecorderFrom extracts the request's recorder, or nil when the
// embedding handler installed none.
func stageRecorderFrom(ctx context.Context) *StageRecorder {
	rec, _ := ctx.Value(ctxKeyStages).(*StageRecorder)
	return rec
}
