package simserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mobilenet/internal/scenario"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func postSpec(t *testing.T, ts *httptest.Server, spec scenario.Spec) (Ticket, int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ticket Ticket
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&ticket); err != nil {
			t.Fatal(err)
		}
	}
	return ticket, resp.StatusCode
}

func pollJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == StatusDone || v.Status == StatusFailed || v.Status == StatusCancelled {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return JobView{}
}

func getBody(t *testing.T, url string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.StatusCode
}

// TestEndToEndBroadcastOverHTTP is the acceptance path: submit a broadcast
// scenario over HTTP, poll the job, fetch the result by hash, and verify a
// repeated submission is answered from the cache with the identical bytes.
func TestEndToEndBroadcastOverHTTP(t *testing.T) {
	t.Parallel()
	_, ts := testServer(t, Config{Workers: 2})
	spec := scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 1024, Agents: 16,
		Radius: 1, Seed: 2011, Metrics: []string{scenario.MetricCurve, scenario.MetricCoverage}}

	ticket, code := postSpec(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("first submission: status %d", code)
	}
	if ticket.Cached || ticket.JobID == "" || ticket.Hash == "" {
		t.Fatalf("first submission ticket %+v", ticket)
	}

	view := pollJob(t, ts, ticket.JobID)
	if view.Status != StatusDone {
		t.Fatalf("job ended %s: %s", view.Status, view.Error)
	}

	payload, code := getBody(t, ts.URL+"/v1/results/"+ticket.Hash)
	if code != http.StatusOK {
		t.Fatalf("result fetch: status %d", code)
	}
	if !bytes.Equal(payload, view.Result) {
		t.Error("job result and cached payload differ")
	}

	// Repeated submission: answered from cache, same bytes.
	ticket2, code := postSpec(t, ts, spec)
	if code != http.StatusOK {
		t.Fatalf("repeat submission: status %d", code)
	}
	if !ticket2.Cached || ticket2.Hash != ticket.Hash {
		t.Fatalf("repeat submission ticket %+v", ticket2)
	}
	payload2, _ := getBody(t, ts.URL+"/v1/results/"+ticket.Hash)
	if !bytes.Equal(payload2, payload) {
		t.Error("cache hit returned a different payload")
	}

	var res scenario.Result
	if err := json.Unmarshal(payload, &res); err != nil {
		t.Fatal(err)
	}
	if res.Engine != scenario.EngineBroadcast || len(res.Reps) != 1 || !res.Reps[0].Completed {
		t.Errorf("unexpected result %+v", res)
	}
}

// TestServiceMatchesLibraryByteForByte is the determinism satellite: the
// same scenario + seed through the service returns bytes identical to a
// direct library (scenario.Run) call, for every engine, including a
// multi-rep job fanned across workers.
func TestServiceMatchesLibraryByteForByte(t *testing.T) {
	t.Parallel()
	_, ts := testServer(t, Config{Workers: 4})
	specs := []scenario.Spec{
		{Engine: scenario.EngineBroadcast, Nodes: 256, Agents: 8, Seed: 7, Reps: 5,
			Metrics: []string{scenario.MetricCurve}},
		{Engine: scenario.EngineGossip, Nodes: 256, Agents: 8, Seed: 7},
		{Engine: scenario.EngineFrog, Nodes: 256, Agents: 8, Seed: 7},
		{Engine: scenario.EngineCoverage, Nodes: 256, Agents: 8, Seed: 7, Reps: 3},
		{Engine: scenario.EnginePredator, Nodes: 256, Agents: 8, Seed: 7, Preys: 4},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Engine, func(t *testing.T) {
			t.Parallel()
			direct, err := scenario.Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(direct)
			if err != nil {
				t.Fatal(err)
			}
			ticket, code := postSpec(t, ts, spec)
			if code != http.StatusAccepted {
				t.Fatalf("submission status %d", code)
			}
			view := pollJob(t, ts, ticket.JobID)
			if view.Status != StatusDone {
				t.Fatalf("job ended %s: %s", view.Status, view.Error)
			}
			if !bytes.Equal(view.Result, want) {
				t.Errorf("service result diverges from library:\nservice: %s\nlibrary: %s", view.Result, want)
			}
		})
	}
}

func TestSubmissionCoalescing(t *testing.T) {
	t.Parallel()
	// One worker and a slow-ish job so the second submission lands while
	// the first is still in flight.
	s, _ := testServer(t, Config{Workers: 1})
	spec := scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 4096, Agents: 16, Seed: 1, Reps: 4}
	t1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if t2.Cached {
		t.Fatal("second submission claims cached while first is in flight")
	}
	if t2.JobID != t1.JobID {
		t.Errorf("identical in-flight submissions got distinct jobs %s and %s", t1.JobID, t2.JobID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.Wait(ctx, t1.JobID); err != nil {
		t.Fatal(err)
	}
}

func TestQueueFull(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer s.Shutdown(context.Background())
	if _, err := s.Submit(scenario.Spec{Engine: scenario.EngineBroadcast,
		Nodes: 256, Agents: 4, Seed: 1, Reps: 3}); err == nil {
		t.Error("3-rep job accepted into a depth-2 queue")
	}
	// Distinct seeds so the jobs do not coalesce.
	var errs int
	for seed := uint64(1); seed <= 16; seed++ {
		_, err := s.Submit(scenario.Spec{Engine: scenario.EngineBroadcast,
			Nodes: 4096, Agents: 8, Seed: seed, Reps: 2})
		if err != nil {
			errs++
		}
	}
	if errs == 0 {
		t.Error("16 two-rep jobs all fit a depth-2 queue")
	}
}

func TestHTTPErrors(t *testing.T) {
	t.Parallel()
	_, ts := testServer(t, Config{Workers: 1})
	resp, err := http.Post(ts.URL+"/v1/run", "application/json",
		strings.NewReader(`{"engine":"teleport","nodes":256,"agents":8}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad engine: status %d, want 400", resp.StatusCode)
	}
	// A replicate count no queue size could hold is structurally
	// unservable: a 400, not a retry-later 503.
	resp, err = http.Post(ts.URL+"/v1/run", "application/json",
		strings.NewReader(`{"engine":"gossip","nodes":256,"agents":8,"reps":100000}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized reps: status %d, want 400", resp.StatusCode)
	}
	if _, code := getBody(t, ts.URL+"/v1/jobs/job-999"); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	if _, code := getBody(t, ts.URL+"/v1/results/deadbeef"); code != http.StatusNotFound {
		t.Errorf("unknown result: status %d, want 404", code)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	t.Parallel()
	s, ts := testServer(t, Config{Workers: 2})
	body, code := getBody(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: %d %s", code, body)
	}
	spec := scenario.Spec{Engine: scenario.EngineGossip, Nodes: 256, Agents: 8, Seed: 3}
	ticket, _ := postSpec(t, ts, spec)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.Wait(ctx, ticket.JobID); err != nil {
		t.Fatal(err)
	}
	postSpec(t, ts, spec) // cache hit
	metrics, code := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	for _, want := range []string{
		"mobiserved_queue_depth",
		"mobiserved_workers 2",
		"mobiserved_jobs_served_total 1",
		"mobiserved_cache_hits_total 1",
		"mobiserved_cache_misses_total 1",
		"mobiserved_cache_hit_rate 0.5",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestConcurrentSubmissions hammers the pool from many goroutines; run
// under -race this exercises the service's locking.
func TestConcurrentSubmissions(t *testing.T) {
	t.Parallel()
	s, _ := testServer(t, Config{Workers: 4, QueueDepth: 1024})
	const n = 24
	var wg sync.WaitGroup
	ids := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Half the submissions share a seed so coalescing and cache
			// paths race with fresh jobs.
			seed := uint64(i % (n / 2))
			ticket, err := s.Submit(scenario.Spec{Engine: scenario.EngineGossip,
				Nodes: 256, Agents: 8, Seed: seed})
			if err != nil {
				errs[i] = err
				return
			}
			if ticket.Cached {
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			_, errs[i] = s.Wait(ctx, ticket.JobID)
			ids[i] = ticket.JobID
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("submission %d: %v", i, err)
		}
	}
}

func TestShutdownRejectsNewWork(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(scenario.Spec{Engine: scenario.EngineGossip,
		Nodes: 256, Agents: 8}); err == nil {
		t.Error("submission accepted after shutdown")
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Error(err)
	}
}

func TestJobEviction(t *testing.T) {
	t.Parallel()
	s, _ := testServer(t, Config{Workers: 2, MaxJobs: 2, QueueDepth: 64})
	var last Ticket
	for seed := uint64(1); seed <= 4; seed++ {
		ticket, err := s.Submit(scenario.Spec{Engine: scenario.EngineGossip,
			Nodes: 256, Agents: 8, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if _, err := s.Wait(ctx, ticket.JobID); err != nil {
			t.Fatal(err)
		}
		cancel()
		last = ticket
	}
	if _, ok := s.Job("job-1"); ok {
		t.Error("oldest finished job survived a MaxJobs=2 window")
	}
	if _, ok := s.Job(last.JobID); !ok {
		t.Error("newest job evicted")
	}
	// Evicted jobs' results remain fetchable through the cache.
	if _, ok := s.Result(mustHash(t, scenario.Spec{Engine: scenario.EngineGossip,
		Nodes: 256, Agents: 8, Seed: 1})); !ok {
		t.Error("evicted job's result missing from cache")
	}
}

func mustHash(t *testing.T, spec scenario.Spec) string {
	t.Helper()
	h, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestInvalidMobilityRejectedAtSubmit: parameter-range errors (checked at
// Bind time inside the engines) must surface as synchronous submit-time
// rejections, not as async failed jobs.
func TestInvalidMobilityRejectedAtSubmit(t *testing.T) {
	t.Parallel()
	s, ts := testServer(t, Config{Workers: 1})
	if _, err := s.Submit(scenario.Spec{Engine: scenario.EngineBroadcast,
		Nodes: 256, Agents: 8, Mobility: "waypoint:pause=-1"}); err == nil {
		t.Error("negative waypoint pause accepted at submit time")
	}
	resp, err := http.Post(ts.URL+"/v1/run", "application/json",
		strings.NewReader(`{"engine":"broadcast","nodes":256,"agents":8,"mobility":"levy:alpha=-2"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad mobility parameter: status %d, want 400", resp.StatusCode)
	}
}

// TestServerSizeLimits: a service bounds what one untrusted submission may
// allocate, and oversized specs are permanently unservable (400-class).
func TestServerSizeLimits(t *testing.T) {
	t.Parallel()
	s, ts := testServer(t, Config{Workers: 1, MaxNodes: 1 << 16, MaxAgents: 64})
	cases := []scenario.Spec{
		{Engine: scenario.EngineCoverage, Nodes: 1 << 20, Agents: 8},
		{Engine: scenario.EngineBroadcast, Nodes: 256, Agents: 128},
		{Engine: scenario.EnginePredator, Nodes: 256, Agents: 8, Preys: 500},
	}
	for _, spec := range cases {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("oversized spec %+v accepted", spec)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/run", "application/json",
		strings.NewReader(`{"engine":"coverage","nodes":1048576,"agents":8}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized nodes: status %d, want 400", resp.StatusCode)
	}
	// Within limits still runs.
	if _, err := s.Submit(scenario.Spec{Engine: scenario.EngineGossip, Nodes: 256, Agents: 8}); err != nil {
		t.Errorf("in-bounds spec rejected: %v", err)
	}
}

// TestServerBoundsDefaultStepCap: leaving max_steps to the engine default
// must not smuggle in an effectively unbounded run — the server bounds the
// derived cap, and an explicit in-bounds cap re-admits the spec.
func TestServerBoundsDefaultStepCap(t *testing.T) {
	t.Parallel()
	s, _ := testServer(t, Config{Workers: 1, MaxSteps: 1 << 20})
	big := scenario.Spec{Engine: scenario.EngineCoverage, Nodes: 1 << 16, Agents: 1, Seed: 1}
	if _, err := s.Submit(big); err == nil {
		t.Error("spec with a huge derived default cap accepted")
	}
	// The same hole must stay closed at the DEFAULT MaxSteps: an enormous
	// derived cap cannot clamp down onto the limit and slip past it.
	sd, _ := testServer(t, Config{Workers: 1})
	if _, err := sd.Submit(scenario.Spec{Engine: scenario.EngineCoverage,
		Nodes: 1 << 24, Agents: 1, Seed: 1}); err == nil {
		t.Error("max-size grid with default step cap accepted on a default server")
	}
	big.MaxSteps = 1000
	ticket, err := s.Submit(big)
	if err != nil {
		t.Fatalf("explicitly capped spec rejected: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.Wait(ctx, ticket.JobID); err != nil {
		t.Fatal(err)
	}
}

// TestFailedJobBookkeeping drives the failure branch directly (validation
// now rejects every known doomed spec at submit time, so the branch guards
// against engine errors that slip past it): a fabricated in-flight job
// whose replicate errors must surface as a failed, uncached job.
func TestFailedJobBookkeeping(t *testing.T) {
	t.Parallel()
	s, _ := testServer(t, Config{Workers: 1})
	spec, err := (scenario.Spec{Engine: scenario.EngineGossip, Nodes: 256, Agents: 8}).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	j := &job{
		id: "job-test-fail", hash: "feedface", spec: spec, status: StatusRunning,
		reps: make([]scenario.Rep, 1), pending: 1, done: make(chan struct{}),
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.inflight[j.hash] = j
	s.mu.Unlock()

	s.completeRep(j, 0, scenario.Rep{}, fmt.Errorf("engine exploded"))
	<-j.done

	v, ok := s.Job(j.id)
	if !ok || v.Status != StatusFailed {
		t.Fatalf("job view %+v, want failed", v)
	}
	if v.Error == "" || v.Result != nil {
		t.Errorf("failed job view %+v: want an error and no result", v)
	}
	if _, ok := s.Result(j.hash); ok {
		t.Error("failed job left a cached result")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := s.Wait(ctx, j.id); err == nil {
		t.Error("Wait on a failed job returned no error")
	}
	if got := s.jobsFailed.Load(); got != 1 {
		t.Errorf("jobsFailed = %d, want 1", got)
	}
}

func ExampleServer() {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ticket, err := s.Submit(scenario.Spec{Engine: scenario.EngineBroadcast,
		Nodes: 256, Agents: 8, Seed: 1})
	if err != nil {
		panic(err)
	}
	payload, err := s.Wait(context.Background(), ticket.JobID)
	if err != nil {
		panic(err)
	}
	var res scenario.Result
	if err := json.Unmarshal(payload, &res); err != nil {
		panic(err)
	}
	fmt.Println(res.Engine, res.AllCompleted)
	// Output: broadcast true
}
