package simserve

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"mobilenet/internal/obs"
	"mobilenet/internal/scenario"
	"mobilenet/internal/store"
)

func testStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestTieredReadThrough pins the two-tier lookup: a key present only on
// disk is served and promoted into the LRU.
func TestTieredReadThrough(t *testing.T) {
	t.Parallel()
	st := testStore(t, t.TempDir())
	if err := st.Put("deep", []byte("from-disk")); err != nil {
		t.Fatal(err)
	}
	c := newTieredCache(4, st)
	defer c.Close()
	got, ok := c.Get("deep")
	if !ok || string(got) != "from-disk" {
		t.Fatalf("read-through Get = %q, %v", got, ok)
	}
	// Promoted: a memory hit now, visible as no further store hits.
	before := st.Stats().Hits
	if _, ok := c.Get("deep"); !ok {
		t.Fatal("promoted entry missing")
	}
	if st.Stats().Hits != before {
		t.Fatal("second Get went to disk; promotion failed")
	}
}

// TestTieredWriteBehind pins the spill path: a Put lands on disk after
// Flush, and survives the LRU evicting it.
func TestTieredWriteBehind(t *testing.T) {
	t.Parallel()
	st := testStore(t, t.TempDir())
	c := newTieredCache(2, st) // tiny LRU: 2 entries
	defer c.Close()
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("payload-%d", i)))
	}
	c.Flush()
	// k0 and k1 were evicted from memory; the disk tier still serves them.
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("k%d", i)
		got, ok := c.Get(key)
		if !ok || string(got) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("Get(%s) after LRU eviction = %q, %v", key, got, ok)
		}
	}
	if st.Len() != 4 {
		t.Fatalf("disk tier holds %d entries, want 4", st.Len())
	}
}

// TestTieredNilStoreDegrades pins the memory-only posture: without a disk
// tier the cache is exactly the old LRU.
func TestTieredNilStoreDegrades(t *testing.T) {
	t.Parallel()
	c := newTieredCache(2, nil)
	defer c.Close()
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Put("c", []byte("3")) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("evicted entry served with no disk tier")
	}
	if got, ok := c.Get("c"); !ok || string(got) != "3" {
		t.Fatalf("Get(c) = %q, %v", got, ok)
	}
	c.Flush() // no-ops must not panic
}

// TestTieredPutAfterClose pins the straggler path: a Put after Close
// commits inline instead of racing the closed queue.
func TestTieredPutAfterClose(t *testing.T) {
	t.Parallel()
	st := testStore(t, t.TempDir())
	c := newTieredCache(4, st)
	c.Close()
	c.Put("late", []byte("straggler"))
	if got, ok := st.Get("late"); !ok || string(got) != "straggler" {
		t.Fatalf("straggler write lost: %q, %v", got, ok)
	}
	c.Flush() // after Close: must return immediately
	c.Close() // double Close: must not panic
}

// TestServerRestartServesFromStore is the service-level durability pin
// demanded by the issue: a result computed before a daemon restart is
// served after it — byte-identical, without re-running the simulation —
// because the disk store survives where the LRU did not.
func TestServerRestartServesFromStore(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	spec := scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 256, Agents: 8,
		Radius: 1, Seed: 77, Metrics: []string{scenario.MetricCurve}}

	st := testStore(t, dir)
	s1 := New(Config{Workers: 2, Store: st})
	ticket, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	payload, err := s1.Wait(ctx, ticket.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server over a fresh LRU, same store directory.
	s2 := New(Config{Workers: 2, Store: testStore(t, dir)})
	defer s2.Shutdown(context.Background())
	ticket2, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ticket2.Cached {
		t.Fatalf("restarted server re-ran the job: ticket %+v", ticket2)
	}
	got, ok := s2.Result(ticket2.Hash)
	if !ok {
		t.Fatal("result not fetchable after restart")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload not byte-identical across restart: %d vs %d bytes", len(got), len(payload))
	}
}

// TestSeriesSpillsToStore pins that hash#series NDJSON renderings ride the
// spill tier too: a series rendered before restart is served from disk
// after it without re-rendering from the result.
func TestSeriesSpillsToStore(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	spec := scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 256, Agents: 8,
		Radius: 1, Seed: 78, Metrics: []string{scenario.MetricCurve},
		Observe: &obs.Spec{Observables: []string{obs.Informed}}}

	s1 := New(Config{Workers: 2, Store: testStore(t, dir)})
	ticket, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s1.Wait(ctx, ticket.JobID); err != nil {
		t.Fatal(err)
	}
	series1, ok, err := s1.Series(ticket.Hash)
	if err != nil || !ok {
		t.Fatalf("Series before restart: %v, %v", ok, err)
	}
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	st2 := testStore(t, dir)
	if _, ok := st2.Get(ticket.Hash + seriesSuffix); !ok {
		t.Fatal("series rendering did not spill to disk")
	}
	s2 := New(Config{Workers: 2, Store: st2})
	defer s2.Shutdown(context.Background())
	series2, ok, err := s2.Series(ticket.Hash)
	if err != nil || !ok {
		t.Fatalf("Series after restart: %v, %v", ok, err)
	}
	if !bytes.Equal(series1, series2) {
		t.Fatal("series not byte-identical across restart")
	}
}

// TestStoreMetricsExposed pins the store telemetry families' presence (and
// absence without a store — the golden exposition test covers that side).
func TestStoreMetricsExposed(t *testing.T) {
	t.Parallel()
	s, ts := testServer(t, Config{Workers: 1, Store: testStore(t, t.TempDir())})
	_ = s
	body, code := getBody(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	for _, want := range []string{
		"mobiserved_store_entries", "mobiserved_store_bytes",
		"mobiserved_store_hits_total", "mobiserved_store_misses_total",
		"mobiserved_store_evictions_total", "mobiserved_store_corrupt_total",
		"mobiserved_store_write_errors_total", "mobiserved_store_dropped_writes_total",
		"# TYPE mobiserved_store_hits_total counter",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("metrics body missing %q", want)
		}
	}
}
