package simserve

import (
	"container/list"
	"sync"
)

// lru is a mutex-guarded least-recently-used cache from scenario hash to
// encoded result payload. Values are the exact bytes served to clients, so
// a hit returns a payload byte-identical to the one computed originally.
type lru struct {
	mu       sync.Mutex
	capacity int
	order    *list.List               // front = most recent
	entries  map[string]*list.Element // hash -> element holding *lruEntry
}

type lruEntry struct {
	key     string
	payload []byte
}

func newLRU(capacity int) *lru {
	if capacity < 1 {
		capacity = 1
	}
	return &lru{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached payload and promotes the entry to most recent.
func (c *lru) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).payload, true
}

// Put stores (or refreshes) a payload, evicting the least recently used
// entry when over capacity.
func (c *lru) Put(key string, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).payload = payload
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, payload: payload})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *lru) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
