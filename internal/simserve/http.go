package simserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"mobilenet/internal/scenario"
	"mobilenet/internal/sweep"
)

// maxSpecBytes bounds a submitted scenario body; specs are small, so one
// megabyte is already generous.
const maxSpecBytes = 1 << 20

// ServeHTTP exposes the service API:
//
//	POST /v1/run                   submit a scenario spec (JSON body)
//	GET  /v1/jobs/{id}             poll a job
//	GET  /v1/jobs/{id}/trace       export a finished job's trace (Chrome trace-event JSON)
//	GET  /v1/results/{hash}        fetch a cached result payload
//	GET  /v1/results/{hash}/series stream the result's observed series (NDJSON)
//	POST /v1/sweeps                submit a sweep spec (JSON body)
//	GET  /v1/sweeps/{id}           poll a sweep (per-point progress, then result)
//	GET  /healthz                  liveness probe
//	GET  /metrics                  Prometheus-style service metrics
//
// Every response carries an X-Request-Id header: the client's own id when
// the request supplied one, a generated process-unique id otherwise. The
// id is threaded through the work a request creates — the jobs a run or a
// sweep's points spawn record it, and their exported traces annotate their
// submit spans with it — so one id correlates a client log line, the
// daemon's request log, and a trace.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := s.requestID(r)
	w.Header().Set(requestIDHeader, id)
	s.mux.ServeHTTP(w, r.WithContext(withRequestID(r.Context(), id)))
}

func newMux(s *Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.timed("run", s.handleRun))
	mux.HandleFunc("GET /v1/jobs/{id}", s.timed("jobs", s.handleJob))
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.timed("trace", s.handleTrace))
	mux.HandleFunc("GET /v1/results/{hash}", s.timed("results", s.handleResult))
	mux.HandleFunc("GET /v1/results/{hash}/series", s.timed("series", s.handleSeries))
	mux.HandleFunc("POST /v1/sweeps", s.timed("sweep_submit", s.handleSweepSubmit))
	mux.HandleFunc("GET /v1/sweeps/{id}", s.timed("sweeps", s.handleSweep))
	mux.HandleFunc("GET /healthz", s.timed("healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.timed("metrics", s.handleMetrics))
	return mux
}

// timed wraps a handler with the route's HTTP latency histogram. The
// route label is a registration-time constant — never a raw request path
// — so the label set stays bounded no matter what clients send.
func (s *Server) timed(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.httpHists[route]
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		hist.Since(t0)
	}
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// checkRate applies the per-client rate limit, writing the 429 (with a
// Retry-After telling the client when a token accrues) and bumping the
// shed counter itself. Returns false when the request was shed. Sits
// before any body read or spec parsing: shedding exists to protect the
// server, so a shed request must cost as close to nothing as possible.
func (s *Server) checkRate(w http.ResponseWriter, client string) bool {
	ok, wait := s.limiter.allow(client, time.Now())
	if ok {
		return true
	}
	s.shed[shedRateLimited].Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(wait.Seconds()))))
	httpError(w, http.StatusTooManyRequests,
		fmt.Sprintf("simserve: client %q is over the submission rate limit; retry after %v", client, wait.Round(time.Millisecond)))
	return false
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	client := clientID(r)
	if !s.checkRate(w, client) {
		return
	}
	deadline, err := deadlineFrom(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	spec, err := scenario.Parse(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	t0 := time.Now()
	ticket, err := s.SubmitWithOptions(spec, SubmitOptions{
		RequestID: requestIDFrom(r.Context()),
		Client:    client,
		Deadline:  deadline,
	})
	stageRecorderFrom(r.Context()).Add(stageAdmission, time.Since(t0))
	switch {
	case errors.Is(err, ErrQueueFull):
		// Shed: the queue cannot hold the submission right now. One
		// second is an honest hint — workers drain replicates in well
		// under that except when the server is truly drowning.
		s.shed[shedQueueFull].Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, errShutdown):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if ticket.Cached {
		writeJSON(w, http.StatusOK, ticket)
		return
	}
	writeJSON(w, http.StatusAccepted, ticket)
}

// handleSweepSubmit accepts a sweep spec. Unlike single runs, a sweep is
// always accepted asynchronously (202): even a fully cached sweep is
// assembled by the dispatcher, and the first poll observes it done with
// every point cached.
func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	client := clientID(r)
	if !s.checkRate(w, client) {
		return
	}
	deadline, err := deadlineFrom(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	sp, err := sweep.Parse(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	ticket, err := s.SubmitSweepWithOptions(sp, SubmitOptions{
		RequestID: requestIDFrom(r.Context()),
		Client:    client,
		Deadline:  deadline,
	})
	switch {
	case errors.Is(err, errShutdown):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, ticket)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	v, ok := s.Sweep(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown sweep")
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	// The poll that observes a finished job carries the job's own stage
	// breakdown to the request log: a slow poll is almost always slow
	// because the job it waited on was, and the breakdown says where.
	if v.Status == StatusDone || v.Status == StatusFailed || v.Status == StatusCancelled {
		if rec := stageRecorderFrom(r.Context()); rec != nil {
			for stage, d := range s.jobStages(id) {
				rec.Add(stage, d)
			}
		}
	}
	writeJSON(w, http.StatusOK, v)
}

// handleTrace exports a finished job's trace in the Chrome trace-event
// format: load the body in Perfetto (ui.perfetto.dev) or chrome://tracing
// to see submit, per-replicate queue wait and execution (with the
// step-phase split in span args), and assembly on a shared timeline.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr, ok, err := s.JobTrace(r.PathValue("id"))
	switch {
	case !ok:
		httpError(w, http.StatusNotFound, "unknown job")
		return
	case err != nil:
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	tr.WriteChromeTrace(w)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	payload, ok := s.Result(r.PathValue("hash"))
	if !ok {
		httpError(w, http.StatusNotFound, "no cached result for this hash")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(payload)
}

// handleSeries streams a cached result's observed time series as NDJSON:
// one JSON object per (observable, step) aggregate, the canonical encoding
// shared byte for byte with the library (obs.WriteNDJSON) and `mobisim
// -series-out -`.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	payload, ok, err := s.Series(r.PathValue("hash"))
	switch {
	case !ok:
		httpError(w, http.StatusNotFound, "no cached result for this hash")
		return
	case errors.Is(err, ErrNoSeries):
		httpError(w, http.StatusNotFound, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	w.Write(payload)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
