package simserve

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mobilenet/internal/scenario"
	"mobilenet/internal/telemetry"
)

// TestMetricsGoldenExposition pins the full /metrics body, byte for byte,
// with every counter forced to a known value. The golden text opens with
// the pre-telemetry hand-written exposition (names, HELP lines, TYPE
// lines, value formatting and family order), so this test proves the
// migration onto internal/telemetry preserved that surface, and continues
// with the hardening counters (panics recovered, cancellations, shed):
// any renamed metric, reworded HELP, retyped family or reordered line
// fails the comparison. Chaos-injection counters are absent because the
// server runs without an injector, and histogram families materialise
// lazily with nothing recorded yet at scrape time —
// TestMetricsStageHistogramsAppear covers their appearance.
func TestMetricsGoldenExposition(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 3})
	defer s.Shutdown(context.Background())
	s.jobsServed.Add(5)
	s.jobsFailed.Add(1)
	s.cacheHits.Add(3)
	s.cacheMisses.Add(1)
	s.sweepsServed.Add(2)
	s.sweepsFailed.Add(1)
	s.sweepPointsCached.Add(7)
	s.seriesServed.Add(4)
	s.panicsRecovered.Add(2)
	s.jobsCancelled.Add(3)
	s.shed[shedQueueFull].Add(6)
	s.shed[shedRateLimited].Add(8)

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != "text/plain; version=0.0.4" {
		t.Errorf("Content-Type = %q", got)
	}
	want := `# HELP mobiserved_queue_depth Replicate tasks waiting for a worker.
# TYPE mobiserved_queue_depth gauge
mobiserved_queue_depth 0
# HELP mobiserved_workers Size of the worker pool.
# TYPE mobiserved_workers gauge
mobiserved_workers 3
# HELP mobiserved_jobs_served_total Jobs completed successfully.
# TYPE mobiserved_jobs_served_total counter
mobiserved_jobs_served_total 5
# HELP mobiserved_jobs_failed_total Jobs that ended in an error.
# TYPE mobiserved_jobs_failed_total counter
mobiserved_jobs_failed_total 1
# HELP mobiserved_cache_hits_total Submissions answered from the result cache.
# TYPE mobiserved_cache_hits_total counter
mobiserved_cache_hits_total 3
# HELP mobiserved_cache_misses_total Submissions that had to run.
# TYPE mobiserved_cache_misses_total counter
mobiserved_cache_misses_total 1
# HELP mobiserved_cache_hit_rate Fraction of submissions answered from cache.
# TYPE mobiserved_cache_hit_rate gauge
mobiserved_cache_hit_rate 0.75
# HELP mobiserved_cache_entries Results currently cached.
# TYPE mobiserved_cache_entries gauge
mobiserved_cache_entries 0
# HELP mobiserved_sweeps_served_total Sweeps completed successfully.
# TYPE mobiserved_sweeps_served_total counter
mobiserved_sweeps_served_total 2
# HELP mobiserved_sweeps_failed_total Sweeps that ended in an error.
# TYPE mobiserved_sweeps_failed_total counter
mobiserved_sweeps_failed_total 1
# HELP mobiserved_sweep_points_cached_total Sweep points answered from the result cache.
# TYPE mobiserved_sweep_points_cached_total counter
mobiserved_sweep_points_cached_total 7
# HELP mobiserved_series_served_total Observed-series payloads served.
# TYPE mobiserved_series_served_total counter
mobiserved_series_served_total 4
# HELP mobiserved_panics_recovered_total Engine panics caught at the worker's replicate boundary.
# TYPE mobiserved_panics_recovered_total counter
mobiserved_panics_recovered_total 2
# HELP mobiserved_jobs_cancelled_total Jobs stopped before completion (deadline expiry or shutdown).
# TYPE mobiserved_jobs_cancelled_total counter
mobiserved_jobs_cancelled_total 3
# HELP mobiserved_shed_total Submissions shed at the HTTP layer by reason.
# TYPE mobiserved_shed_total counter
mobiserved_shed_total{reason="queue_full"} 6
mobiserved_shed_total{reason="rate_limited"} 8
`
	if rec.Body.String() != want {
		t.Errorf("exposition body diverged from the pinned pre-telemetry format:\ngot:\n%s\nwant:\n%s", rec.Body.String(), want)
	}
}

// TestMetricsStageHistogramsAppear runs one real scenario plus a cached
// resubmission through the service and checks the lifecycle histograms
// materialise on /metrics: the queue-wait and execution stages (the
// acceptance-criterion pair), the assembly/cache-write/admission stages,
// and the per-route HTTP family — with parseable, quantile-extractable
// bucket encodings.
func TestMetricsStageHistogramsAppear(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	spec := scenario.Spec{Engine: "broadcast", Nodes: 256, Agents: 8, Reps: 2, Seed: 99}
	ticket, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.Wait(ctx, ticket.JobID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(spec); err != nil { // cache hit
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	parsed := telemetry.ParseHistograms(body)
	for _, stage := range []string{stageAdmission, stageQueueWait, stageExecute, stageAssemble, stageCacheWrite} {
		key := `mobiserved_stage_seconds{stage="` + stage + `"}`
		h, ok := parsed[key]
		if !ok {
			t.Errorf("stage %q missing from /metrics", stage)
			continue
		}
		if h.Count() == 0 {
			t.Errorf("stage %q exposed with zero observations", stage)
		}
		if p99 := h.Quantile(0.99); p99 <= 0 {
			t.Errorf("stage %q p99 = %g", stage, p99)
		}
	}
	if h := parsed[`mobiserved_stage_seconds{stage="queue_wait"}`]; h.Count() != 2 {
		t.Errorf("queue_wait observations = %d, want one per replicate (2)", h.Count())
	}
	if h := parsed[`mobiserved_stage_seconds{stage="execute"}`]; h.Count() != 2 {
		t.Errorf("execute observations = %d, want one per replicate (2)", h.Count())
	}
	// The scrape itself went through the mux, so at least the metrics
	// route cannot have fired yet; check a route that has.
	if !strings.Contains(body, `mobiserved_http_request_seconds_bucket{route="`) {
		// Submit() above bypassed HTTP, so drive one request through the mux.
		rec2 := httptest.NewRecorder()
		s.ServeHTTP(rec2, httptest.NewRequest("GET", "/healthz", nil))
		rec3 := httptest.NewRecorder()
		s.ServeHTTP(rec3, httptest.NewRequest("GET", "/metrics", nil))
		if !strings.Contains(rec3.Body.String(), `mobiserved_http_request_seconds_bucket{route="healthz"`) {
			t.Error("HTTP route histogram did not materialise after a request")
		}
	}
}
