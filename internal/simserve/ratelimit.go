package simserve

import (
	"math"
	"sync"
	"time"
)

// maxRateClients bounds the rate limiter's per-client bucket map; client
// ids arrive from untrusted headers, and an unbounded map is a memory
// leak one curl loop can drive. When the bound is hit, the stalest
// bucket is evicted — a stale bucket is at worst a full one, so eviction
// never penalises anyone.
const maxRateClients = 4096

// rateLimiter is a per-client token bucket: each client id accrues rate
// tokens per second up to burst, and every submission spends one. A nil
// *rateLimiter admits everything (rate limiting off).
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter builds a limiter, or returns nil when rate <= 0 (off).
// burst <= 0 selects one second's worth of rate (minimum 1).
func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if burst <= 0 {
		b = math.Max(1, math.Ceil(rate))
	}
	return &rateLimiter{rate: rate, burst: b, buckets: make(map[string]*bucket)}
}

// allow spends one token from client's bucket. When the bucket is empty
// it reports false with the wait until a token accrues — the Retry-After
// the HTTP layer surfaces.
func (l *rateLimiter) allow(client string, now time.Time) (bool, time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[client]
	if !ok {
		if len(l.buckets) >= maxRateClients {
			l.evictStalest()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	} else {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = math.Min(l.burst, b.tokens+dt*l.rate)
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// evictStalest drops the least-recently-touched bucket. Called with
// l.mu held; linear scan is fine at the fixed cardinality bound.
func (l *rateLimiter) evictStalest() {
	var victim string
	var oldest time.Time
	first := true
	for id, b := range l.buckets {
		if first || b.last.Before(oldest) {
			victim, oldest, first = id, b.last, false
		}
	}
	delete(l.buckets, victim)
}
