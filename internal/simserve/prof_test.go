package simserve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mobilenet/internal/prof"
	"mobilenet/internal/scenario"
	"mobilenet/internal/telemetry"
)

// get performs a GET with optional extra headers and returns the response.
func get(t *testing.T, url string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestRequestIDEchoAndGeneration(t *testing.T) {
	t.Parallel()
	_, ts := testServer(t, Config{Workers: 1})

	// A sane client id is honored verbatim on the response.
	resp := get(t, ts.URL+"/healthz", map[string]string{"X-Request-Id": "client-abc.123"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-abc.123" {
		t.Errorf("client id not echoed: got %q", got)
	}

	// No client id: the service generates one, and successive requests get
	// distinct ids.
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp := get(t, ts.URL+"/healthz", nil)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		id := resp.Header.Get("X-Request-Id")
		if id == "" {
			t.Fatal("no generated request id on response")
		}
		if seen[id] {
			t.Fatalf("generated id %q repeated", id)
		}
		seen[id] = true
	}

	// Unsafe client ids (overlong, or carrying non-printable bytes that
	// could forge log lines) are replaced, not echoed. net/http's client
	// refuses to even send such headers, so drive the handler directly —
	// a hostile peer is not bound by the standard library's politeness.
	s, _ := testServer(t, Config{Workers: 1})
	for name, bad := range map[string]string{
		"overlong":    strings.Repeat("x", maxRequestIDLen+1),
		"control":     "abc\x01def",
		"non-ascii":   "caf\xc3\xa9",
		"tab-smuggle": "id\tstatus=200",
	} {
		req := httptest.NewRequest("GET", "/healthz", nil)
		req.Header.Set("X-Request-Id", bad)
		rr := httptest.NewRecorder()
		s.ServeHTTP(rr, req)
		got := rr.Header().Get("X-Request-Id")
		if got == bad || got == "" {
			t.Errorf("%s: unsafe id handling: got %q", name, got)
		}
	}
}

// TestJobTraceEndpoint drives GET /v1/jobs/{id}/trace through all three
// outcomes: unknown job (404), unfinished job (409), and a finished job
// whose export is valid Chrome trace-event JSON covering the full request
// lifecycle (submit, per-replicate queue wait and run, assemble).
func TestJobTraceEndpoint(t *testing.T) {
	t.Parallel()
	s, ts := testServer(t, Config{Workers: 2})

	resp := get(t, ts.URL+"/v1/jobs/nope/trace", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace status = %d, want 404", resp.StatusCode)
	}

	// An unfinished job refuses to export (the trace is still being
	// written); plant one directly — tests are in-package.
	s.mu.Lock()
	s.jobs["job-hung"] = &job{id: "job-hung", status: StatusRunning, trace: prof.NewTrace()}
	s.mu.Unlock()
	resp = get(t, ts.URL+"/v1/jobs/job-hung/trace", nil)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("running job trace status = %d, want 409", resp.StatusCode)
	}
	if _, _, err := s.JobTrace("job-hung"); err != ErrJobNotDone {
		t.Fatalf("JobTrace on running job: err = %v, want ErrJobNotDone", err)
	}
	s.mu.Lock()
	delete(s.jobs, "job-hung")
	s.mu.Unlock()

	const reps = 2
	spec := scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 1024, Agents: 16,
		Radius: 1, Seed: 2011, Reps: reps}
	ticket, status := postSpec(t, ts, spec)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	pollJob(t, ts, ticket.JobID)

	resp = get(t, ts.URL+"/v1/jobs/"+ticket.JobID+"/trace", nil)
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace content type = %q", ct)
	}
	spans, err := prof.ValidateChromeTrace(body)
	if err != nil {
		t.Fatalf("job trace is not valid Chrome trace-event JSON: %v", err)
	}
	// submit + (queue_wait + run) per replicate + assemble.
	if want := 1 + 2*reps + 1; spans != want {
		t.Errorf("trace has %d spans, want %d", spans, want)
	}
	for _, probe := range []string{`"submit broadcast"`, `"queue_wait"`, `"run broadcast"`, `"assemble"`, `"phase_`} {
		if !strings.Contains(string(body), probe) {
			t.Errorf("trace misses %s:\n%s", probe, body)
		}
	}
}

// TestEnginePhaseHistograms is the telemetry round trip the observability
// surface promises: after a job runs, /metrics exposes
// mobiserved_engine_phase_seconds histograms whose {engine,phase} labels
// ParseHistograms recovers, with one observation per replicate for phases
// the engine exercises.
func TestEnginePhaseHistograms(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	const reps = 2
	spec := scenario.Spec{Engine: "broadcast", Nodes: 1024, Agents: 16, Seed: 4, Reps: reps}
	ticket, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := contextWithTimeout(t)
	defer cancel()
	if _, err := s.Wait(ctx, ticket.JobID); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	parsed := telemetry.ParseHistograms(rec.Body.String())
	for _, phase := range []string{"move", "index", "label", "spread"} {
		key := `mobiserved_engine_phase_seconds{engine="broadcast",phase="` + phase + `"}`
		h, ok := parsed[key]
		if !ok {
			t.Errorf("%s missing from /metrics", key)
			continue
		}
		if h.Count() != reps {
			t.Errorf("%s observations = %d, want one per replicate (%d)", key, h.Count(), reps)
		}
	}
	// Unexercised (engine, phase) pairs must not leak series: no scenario
	// ran on the other engines.
	if _, ok := parsed[`mobiserved_engine_phase_seconds{engine="predator",phase="move"}`]; ok {
		t.Error("phase histogram materialised for an engine that never ran")
	}
}

// TestJobPhasesStayOutOfPayload pins the determinism contract on the
// service path: the worker profiles every replicate for telemetry, but the
// cached payload stays byte-identical to an unprofiled library run.
func TestJobPhasesStayOutOfPayload(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	spec := scenario.Spec{Engine: "broadcast", Nodes: 256, Agents: 8, Seed: 12, Reps: 2}
	ticket, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := contextWithTimeout(t)
	defer cancel()
	payload, err := s.Wait(ctx, ticket.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(payload), `"phases"`) {
		t.Fatalf("service payload leaked phase timings:\n%s", payload)
	}
	res, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != string(want) {
		t.Fatal("service payload differs from unprofiled library run")
	}
}

func TestStageRecorder(t *testing.T) {
	t.Parallel()
	var nilRec *StageRecorder
	nilRec.Add("execute", time.Second) // must not panic
	if nilRec.Stages() != nil {
		t.Fatal("nil recorder reported stages")
	}
	rec := NewStageRecorder()
	if rec.Stages() != nil {
		t.Fatal("empty recorder must report nil, not an empty map")
	}
	rec.Add("execute", 2*time.Millisecond)
	rec.Add("execute", 3*time.Millisecond)
	rec.Add("queue_wait", time.Millisecond)
	rec.Add("noop", 0)                // zero durations are dropped
	rec.Add("negative", -time.Second) // so are negative ones
	got := rec.Stages()
	if len(got) != 2 || got["execute"] != 5*time.Millisecond || got["queue_wait"] != time.Millisecond {
		t.Fatalf("Stages() = %v", got)
	}
	got["execute"] = 0 // the snapshot is a copy
	if rec.Stages()["execute"] != 5*time.Millisecond {
		t.Fatal("Stages() exposed internal state")
	}

	// Context plumbing: absent recorder yields a nil (safe) recorder.
	if stageRecorderFrom(context.Background()) != nil {
		t.Fatal("empty context produced a recorder")
	}
	ctx := WithStageRecorder(context.Background(), rec)
	if stageRecorderFrom(ctx) != rec {
		t.Fatal("recorder did not round-trip through the context")
	}
}

// TestJobStageBreakdownReachesRecorder checks the slow-log data path: a
// poll that observes a finished job fills the request's stage recorder with
// the job's queue-wait/execute/assemble totals, which is what the daemon
// renders on slow-request warn lines.
func TestJobStageBreakdownReachesRecorder(t *testing.T) {
	t.Parallel()
	s, ts := testServer(t, Config{Workers: 2})
	spec := scenario.Spec{Engine: scenario.EngineBroadcast, Nodes: 1024, Agents: 16, Seed: 8, Reps: 2}
	ticket, status := postSpec(t, ts, spec)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	pollJob(t, ts, ticket.JobID)

	rec := NewStageRecorder()
	req := httptest.NewRequest("GET", "/v1/jobs/"+ticket.JobID, nil)
	req = req.WithContext(WithStageRecorder(req.Context(), rec))
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("job poll status = %d", rr.Code)
	}
	stages := rec.Stages()
	for _, stage := range []string{stageQueueWait, stageExecute, stageAssemble} {
		if stages[stage] <= 0 {
			t.Errorf("stage %q missing from the done-poll breakdown: %v", stage, stages)
		}
	}
}

// TestSweepPropagatesRequestID checks that every per-point job a sweep
// spawns inherits the sweep submission's request id, so one id follows the
// whole batch through logs and traces.
func TestSweepPropagatesRequestID(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	ticket, err := s.SubmitSweepWithRequestID(testSweepSpec(), "sweep-rid-1")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, ok := s.Sweep(ticket.SweepID)
		if !ok {
			t.Fatal("sweep vanished")
		}
		if v.Status == StatusDone || v.Status == StatusFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep did not finish in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.jobs) == 0 {
		t.Fatal("sweep ran no jobs")
	}
	for id, j := range s.jobs {
		if j.requestID != "sweep-rid-1" {
			t.Errorf("point job %s carries request id %q, want the sweep's", id, j.requestID)
		}
	}
}
