package simserve

import "sync"

// fairQueue is the worker pool's run queue: a bounded multi-lane queue
// with weighted fair dequeuing across clients. Each client id owns a FIFO
// lane; workers drain lanes in deficit-round-robin order, so a client
// that floods the queue delays its own later tasks, not everyone else's —
// a small interactive submission lands at the back of its OWN (empty)
// lane and is served within one round of the ring.
//
// The queue replaces the previous single buffered channel. The channel
// was strictly FIFO across clients, which let one batch submitter park
// hundreds of replicates in front of every other client; total capacity
// semantics (one bound across all lanes, whole submissions admitted or
// rejected atomically) are unchanged.
type fairQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	depth  int // capacity across all lanes
	total  int // tasks currently queued

	lanes   map[string]*clientLane
	ring    []*clientLane // lanes with queued tasks, dequeue order
	next    int           // ring cursor
	weights map[string]int
}

// clientLane is one client's FIFO of queued tasks. head indexes the next
// task so dequeues never shift the slice; the slice is reset when the
// lane drains.
type clientLane struct {
	client string
	tasks  []task
	head   int
	weight int // tasks served per ring visit (>= 1)
	credit int // remaining tasks this visit (deficit round-robin)
}

// newFairQueue builds a queue bounded to depth tasks. weights optionally
// assigns per-client ring shares (missing or < 1 means 1).
func newFairQueue(depth int, weights map[string]int) *fairQueue {
	q := &fairQueue{depth: depth, lanes: make(map[string]*clientLane), weights: weights}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// tryPush enqueues all of ts on client's lane, or none of them when they
// do not fit the remaining capacity (the caller surfaces ErrQueueFull).
// Admission is all-or-nothing so a job's replicates always enter the
// queue together.
func (q *fairQueue) tryPush(client string, ts []task) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.total+len(ts) > q.depth {
		return false
	}
	lane := q.lanes[client]
	if lane == nil {
		w := q.weights[client]
		if w < 1 {
			w = 1
		}
		lane = &clientLane{client: client, weight: w}
		q.lanes[client] = lane
	}
	if lane.head == len(lane.tasks) {
		// Empty lane (fresh or fully drained-but-still-ringed): joining
		// the ring resets its visit credit.
		lane.tasks = lane.tasks[:0]
		lane.head = 0
		lane.credit = lane.weight
		q.ring = append(q.ring, lane)
	}
	lane.tasks = append(lane.tasks, ts...)
	q.total += len(ts)
	q.cond.Broadcast()
	return true
}

// pop blocks until a task is available and returns it, or returns false
// once the queue is closed AND drained — workers process everything that
// was admitted before shutdown began.
func (q *fairQueue) pop() (task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.total == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.total == 0 {
		return task{}, false
	}
	if q.next >= len(q.ring) {
		q.next = 0
	}
	lane := q.ring[q.next]
	t := lane.tasks[lane.head]
	lane.tasks[lane.head] = task{} // release the job pointer
	lane.head++
	lane.credit--
	q.total--
	if lane.head == len(lane.tasks) {
		// Lane drained: leave the ring and the map (a returning client
		// gets a fresh lane; abandoned ids hold no memory).
		q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
		delete(q.lanes, lane.client)
	} else if lane.credit <= 0 {
		lane.credit = lane.weight
		q.next++
	}
	return t, true
}

// len returns the number of queued tasks.
func (q *fairQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.total
}

// close stops admission and wakes blocked workers; queued tasks still
// drain through pop.
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
