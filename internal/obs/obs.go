// Package obs is the per-step observation pipeline: it turns the engines'
// terminal scalars (steps-to-completion, final coverage) into time-resolved
// series — the informed-count trajectories and component-evolution curves
// behind the paper's figures. A Spec names the observables and the sampling
// cadence; a Recorder collects samples inside an engine's step loop with
// zero per-step allocation (slabs are preallocated and reused across
// replicates); Aggregate folds the per-replicate series into per-step
// mean/CI summaries; and WriteNDJSON / Table render the aggregate in the
// streaming and tabular forms the CLI and the simulation service emit.
//
// The package is a leaf: engines depend on it (they call the Recorder from
// their step loops) and the scenario layer depends on it (the `observe`
// block of a spec is an obs.Spec), but obs itself knows nothing about
// either.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"mobilenet/internal/stats"
	"mobilenet/internal/tableio"
)

// Observable names requestable in Spec.Observables. Engines publish the
// subset they can produce; the scenario layer filters a spec's request down
// to that subset at canonicalisation time.
const (
	// Informed is the engine's primary progress count per step: informed
	// agents (broadcast), agents knowing every rumor (gossip), active
	// agents (frog), covered nodes (coverage), caught preys (predator).
	Informed = "informed"
	// Components is the number of connected components of the visibility
	// graph G_t(r).
	Components = "components"
	// Largest is the agent count of the largest visibility component.
	Largest = "largest_component"
	// Coverage is the covered fraction of the grid in [0, 1]: the informed
	// area |I(t)|/n (broadcast) or the visited-node fraction (coverage).
	Coverage = "coverage"
	// Meeting is the 0/1 indicator of whether the two walks of a Lemma 3
	// trial have met inside the lens by step t.
	Meeting = "meeting"
)

// names lists every observable, sorted.
var names = []string{Components, Coverage, Informed, Largest, Meeting}

// Names returns all observable names, sorted.
func Names() []string { return append([]string(nil), names...) }

// Known reports whether name is a defined observable.
func Known(name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// Spec is the `observe` block of a scenario: which observables to record
// and at what cadence. Unlike execution knobs (parallelism, label), an
// observation spec changes the result payload, so it is part of the
// scenario's canonical identity and content hash.
type Spec struct {
	// Observables names the series to record; see the observable constants.
	Observables []string `json:"observables"`
	// Every is the sampling cadence: record steps t with t % Every == 0
	// (t = 0 is always recorded). Zero selects 1, every step.
	Every int `json:"every,omitempty"`
	// MaxPoints caps the recorded point count. When a new sample would
	// exceed the cap, the recorder drops every other retained sample and
	// doubles its stride, so a run of any length fits the cap while the
	// series keeps uniform resolution. Zero means uncapped; positive
	// values must be even and at least 2 (an odd cap would compact onto a
	// grid the next sample misses, breaking the uniform stride).
	MaxPoints int `json:"max_points,omitempty"`
}

// Validate checks the spec without resolving defaults.
func (s Spec) Validate() error {
	if len(s.Observables) == 0 {
		return fmt.Errorf("obs: observe block names no observables (want %s)", strings.Join(names, "|"))
	}
	for _, n := range s.Observables {
		if !Known(n) {
			return fmt.Errorf("obs: unknown observable %q (want %s)", n, strings.Join(names, "|"))
		}
	}
	if s.Every < 0 {
		return fmt.Errorf("obs: negative cadence every=%d", s.Every)
	}
	if s.MaxPoints < 0 {
		return fmt.Errorf("obs: negative max_points %d", s.MaxPoints)
	}
	if s.MaxPoints%2 != 0 {
		return fmt.Errorf("obs: max_points must be 0 (uncapped) or an even value >= 2, got %d", s.MaxPoints)
	}
	return nil
}

// Canonical validates the spec and resolves it to canonical form: the
// observables filtered to those keep accepts, deduplicated and sorted, and
// the cadence default made explicit. It returns ok=false when no requested
// observable survives the filter, in which case the whole observe block
// should be dropped. A nil keep accepts every observable.
func (s Spec) Canonical(keep func(name string) bool) (Spec, bool, error) {
	if err := s.Validate(); err != nil {
		return Spec{}, false, err
	}
	set := map[string]bool{}
	for _, n := range s.Observables {
		if keep == nil || keep(n) {
			set[n] = true
		}
	}
	if len(set) == 0 {
		return Spec{}, false, nil
	}
	c := Spec{Every: s.Every, MaxPoints: s.MaxPoints}
	if c.Every == 0 {
		c.Every = 1
	}
	for n := range set {
		c.Observables = append(c.Observables, n)
	}
	sort.Strings(c.Observables)
	return c, true, nil
}

// Sample is one step's worth of raw engine state. Engines fill the fields
// they track and pass the sample by value, so observing allocates nothing.
type Sample struct {
	// Informed is the engine's primary progress count; see the Informed
	// observable.
	Informed int
	// Components is the visibility-component count at this step.
	Components int
	// Largest is the largest visibility component's agent count.
	Largest int
	// Covered is the covered-node count and Nodes the grid size n; the
	// Coverage observable records Covered/Nodes.
	Covered int
	// Nodes is the grid node count used to normalise Covered.
	Nodes int
	// Met is the Lemma 3 lens-meeting indicator.
	Met bool
}

// value extracts one observable from the sample.
func (s Sample) value(name string) float64 {
	switch name {
	case Informed:
		return float64(s.Informed)
	case Components:
		return float64(s.Components)
	case Largest:
		return float64(s.Largest)
	case Coverage:
		if s.Nodes <= 0 {
			return 0
		}
		return float64(s.Covered) / float64(s.Nodes)
	case Meeting:
		if s.Met {
			return 1
		}
		return 0
	}
	return 0
}

// defaultCap is the initial slab capacity of an uncapped recorder; capped
// recorders preallocate exactly MaxPoints so the step loop never grows a
// slice.
const defaultCap = 1024

// Recorder collects per-step samples for one replicate. It is created once
// per replicate (or reused across replicates via Reset), preallocates its
// slabs up front, and performs no allocation per recorded step. It is not
// safe for concurrent use; every replicate gets its own.
type Recorder struct {
	spec  Spec // canonical: non-empty observables, Every >= 1
	every int  // current stride; doubles when MaxPoints overflows

	needComponents bool
	needCoverage   bool

	steps  []int
	values [][]float64 // values[i] parallels spec.Observables[i]
}

// NewRecorder builds a recorder for a canonical spec (see Spec.Canonical).
// The slabs are preallocated: MaxPoints entries when capped, a generous
// default otherwise.
func NewRecorder(spec Spec) *Recorder {
	if spec.Every < 1 {
		spec.Every = 1
	}
	capacity := spec.MaxPoints
	if capacity <= 0 {
		capacity = defaultCap
	}
	r := &Recorder{
		spec:   spec,
		every:  spec.Every,
		steps:  make([]int, 0, capacity),
		values: make([][]float64, len(spec.Observables)),
	}
	for i := range r.values {
		r.values[i] = make([]float64, 0, capacity)
	}
	for _, n := range spec.Observables {
		switch n {
		case Components, Largest:
			r.needComponents = true
		case Coverage:
			r.needCoverage = true
		}
	}
	return r
}

// Reset clears the recorded samples and restores the base cadence, keeping
// the slabs so a recorder reused across replicates allocates nothing after
// the first.
func (r *Recorder) Reset() {
	r.every = r.spec.Every
	r.steps = r.steps[:0]
	for i := range r.values {
		r.values[i] = r.values[i][:0]
	}
}

// Needs reports whether the recorder records the named observable. Engines
// use it to avoid computing state no requested observable consumes.
func (r *Recorder) Needs(name string) bool {
	for _, n := range r.spec.Observables {
		if n == name {
			return true
		}
	}
	return false
}

// NeedsComponents reports whether any requested observable requires
// labelling the visibility components this step (Components or Largest).
func (r *Recorder) NeedsComponents() bool { return r.needComponents }

// NeedsCoverage reports whether the Coverage observable was requested, so
// engines know to track the informed/visited area.
func (r *Recorder) NeedsCoverage() bool { return r.needCoverage }

// Wants reports whether step t falls on the current sampling cadence.
// Engines gate their Record calls — and any observable-only state
// computation — behind it.
func (r *Recorder) Wants(t int) bool { return t%r.every == 0 }

// Record appends one sample. When the recorder is at its MaxPoints cap it
// first halves the retained series in place (keeping every other sample)
// and doubles the stride, so the series always spans the whole run at
// uniform resolution. Capped recorders never allocate here (their slabs
// are sized exactly); uncapped recorders allocate only on the amortised
// geometric slab growths past the preallocated default, and not at all
// once reused (Reset keeps the grown slabs).
func (r *Recorder) Record(t int, s Sample) {
	if r.spec.MaxPoints > 0 && len(r.steps) >= r.spec.MaxPoints {
		r.compact()
	}
	r.steps = append(r.steps, t)
	for i, n := range r.spec.Observables {
		r.values[i] = append(r.values[i], s.value(n))
	}
}

// compact drops every other retained sample in place and doubles the
// stride.
func (r *Recorder) compact() {
	n := len(r.steps)
	kept := 0
	for i := 0; i < n; i += 2 {
		r.steps[kept] = r.steps[i]
		for vi := range r.values {
			r.values[vi][kept] = r.values[vi][i]
		}
		kept++
	}
	r.steps = r.steps[:kept]
	for vi := range r.values {
		r.values[vi] = r.values[vi][:kept]
	}
	r.every *= 2
}

// Len returns the number of recorded samples.
func (r *Recorder) Len() int { return len(r.steps) }

// Series copies the recorded samples out into a SeriesSet. It is called
// once per replicate, after the run; the recorder stays reusable.
func (r *Recorder) Series() *SeriesSet {
	out := &SeriesSet{
		Steps:  append([]int(nil), r.steps...),
		Values: make(map[string][]float64, len(r.spec.Observables)),
	}
	for i, n := range r.spec.Observables {
		out.Values[n] = append([]float64(nil), r.values[i]...)
	}
	return out
}

// SeriesSet is one replicate's recorded time series: the sampled steps and,
// per observable, the values at those steps (parallel to Steps). Map keys
// marshal sorted, so the JSON encoding is deterministic.
type SeriesSet struct {
	// Steps lists the sampled step indices, ascending.
	Steps []int `json:"steps"`
	// Values holds one value series per observable, parallel to Steps.
	Values map[string][]float64 `json:"values"`
}

// AggSeries is one observable's aggregate across replicates: at every step
// sampled by at least one replicate, the mean and the Student-t 95%
// confidence interval over the replicates that sampled it. The arrays are
// parallel.
type AggSeries struct {
	// Name is the observable.
	Name string `json:"name"`
	// Steps lists the aggregated step indices, ascending.
	Steps []int `json:"steps"`
	// N is the number of replicates contributing at each step.
	N []int `json:"n"`
	// Mean is the across-replicate mean at each step.
	Mean []float64 `json:"mean"`
	// CILow and CIHigh bound the Student-t 95% confidence interval of the
	// mean at each step (equal to Mean when only one replicate
	// contributed).
	CILow  []float64 `json:"ci95_low"`
	CIHigh []float64 `json:"ci95_high"`
}

// Aggregate folds per-replicate series into one AggSeries per observable,
// sorted by observable name. Replicates may have sampled different step
// grids (runs of different lengths downsample at different strides): every
// step sampled by at least one replicate appears, aggregated over the
// replicates that sampled it. Nil sets are skipped, so callers can pass a
// replicate slice with gaps.
func Aggregate(sets []*SeriesSet) []AggSeries {
	live := make([]*SeriesSet, 0, len(sets))
	nameSet := map[string]bool{}
	for _, s := range sets {
		if s == nil {
			continue
		}
		live = append(live, s)
		for n := range s.Values {
			nameSet[n] = true
		}
	}
	if len(nameSet) == 0 {
		return nil
	}
	obsNames := make([]string, 0, len(nameSet))
	for n := range nameSet {
		obsNames = append(obsNames, n)
	}
	sort.Strings(obsNames)

	// Every Steps slice is sorted ascending, so a k-way merge with one
	// cursor per replicate visits the union of steps in order with
	// sequential access and no per-step index structures.
	out := make([]AggSeries, len(obsNames))
	for i, name := range obsNames {
		out[i].Name = name
	}
	idx := make([]int, len(live))
	for {
		step, any := 0, false
		for si, s := range live {
			if idx[si] < len(s.Steps) && (!any || s.Steps[idx[si]] < step) {
				step, any = s.Steps[idx[si]], true
			}
		}
		if !any {
			return out
		}
		for ni, name := range obsNames {
			var w stats.Welford
			for si, s := range live {
				if idx[si] >= len(s.Steps) || s.Steps[idx[si]] != step {
					continue
				}
				if vals, ok := s.Values[name]; ok {
					w.Add(vals[idx[si]])
				}
			}
			if w.N() == 0 {
				continue
			}
			half := stats.TCritical95(w.N()) * w.StdErr()
			agg := &out[ni]
			agg.Steps = append(agg.Steps, step)
			agg.N = append(agg.N, w.N())
			agg.Mean = append(agg.Mean, w.Mean())
			agg.CILow = append(agg.CILow, w.Mean()-half)
			agg.CIHigh = append(agg.CIHigh, w.Mean()+half)
		}
		for si, s := range live {
			if idx[si] < len(s.Steps) && s.Steps[idx[si]] == step {
				idx[si]++
			}
		}
	}
}

// point is the NDJSON line shape: one aggregated sample of one observable.
type point struct {
	Name   string  `json:"name"`
	Step   int     `json:"step"`
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	CILow  float64 `json:"ci95_low"`
	CIHigh float64 `json:"ci95_high"`
}

// WriteNDJSON streams an aggregate as newline-delimited JSON, one object
// per (observable, step) sample, observables in series order and steps
// ascending within each. This is THE canonical series wire encoding: the
// library, `mobisim -series-out -` and the service's
// /v1/results/{hash}/series endpoint all emit exactly these bytes for the
// same scenario, which is what the byte-identity pins test.
func WriteNDJSON(w io.Writer, series []AggSeries) error {
	for _, s := range series {
		for i := range s.Steps {
			p := point{Name: s.Name, Step: s.Steps[i], N: s.N[i],
				Mean: s.Mean[i], CILow: s.CILow[i], CIHigh: s.CIHigh[i]}
			line, err := json.Marshal(p)
			if err != nil {
				return err
			}
			line = append(line, '\n')
			if _, err := w.Write(line); err != nil {
				return err
			}
		}
	}
	return nil
}

// Table renders an aggregate as a rectangular table — one row per
// (observable, step) sample — for CSV/JSON export via internal/tableio.
func Table(series []AggSeries) *tableio.Table {
	t := tableio.NewTable("", "observable", "step", "n", "mean", "ci95_low", "ci95_high")
	for _, s := range series {
		for i := range s.Steps {
			t.AddRow(s.Name, s.Steps[i], s.N[i], s.Mean[i], s.CILow[i], s.CIHigh[i])
		}
	}
	return t
}
