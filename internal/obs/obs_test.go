package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestSpecValidate(t *testing.T) {
	t.Parallel()
	ok := Spec{Observables: []string{Informed}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{},                                  // no observables
		{Observables: []string{"velocity"}}, // unknown name
		{Observables: []string{Informed}, Every: -1},
		{Observables: []string{Informed}, MaxPoints: -4},
		{Observables: []string{Informed}, MaxPoints: 1}, // below the doubling floor
		{Observables: []string{Informed}, MaxPoints: 5}, // odd: compaction would leave the stride grid
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v validated", s)
		}
	}
}

func TestSpecCanonical(t *testing.T) {
	t.Parallel()
	s := Spec{Observables: []string{Largest, Informed, Informed}}
	c, ok, err := s.Canonical(nil)
	if err != nil || !ok {
		t.Fatalf("canonical: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(c.Observables, []string{Informed, Largest}) {
		t.Errorf("observables = %v, want deduped+sorted", c.Observables)
	}
	if c.Every != 1 {
		t.Errorf("default cadence = %d, want 1", c.Every)
	}
	// The keep filter drops unsupported observables; nothing surviving
	// drops the whole block.
	c, ok, err = s.Canonical(func(n string) bool { return n == Largest })
	if err != nil || !ok || !reflect.DeepEqual(c.Observables, []string{Largest}) {
		t.Errorf("filtered canonical = %+v ok=%v err=%v", c, ok, err)
	}
	if _, ok, err := s.Canonical(func(string) bool { return false }); ok || err != nil {
		t.Errorf("empty filter: ok=%v err=%v, want dropped block", ok, err)
	}
}

func TestRecorderCadence(t *testing.T) {
	t.Parallel()
	r := NewRecorder(Spec{Observables: []string{Informed}, Every: 3})
	for tick := 0; tick <= 10; tick++ {
		if r.Wants(tick) {
			r.Record(tick, Sample{Informed: tick * 10})
		}
	}
	s := r.Series()
	if !reflect.DeepEqual(s.Steps, []int{0, 3, 6, 9}) {
		t.Errorf("steps = %v", s.Steps)
	}
	if !reflect.DeepEqual(s.Values[Informed], []float64{0, 30, 60, 90}) {
		t.Errorf("values = %v", s.Values[Informed])
	}
}

// TestRecorderStrideDoubling: hitting the MaxPoints cap halves the retained
// series and doubles the stride, so any run length fits the cap with
// uniform resolution and the t=0 sample always survives.
func TestRecorderStrideDoubling(t *testing.T) {
	t.Parallel()
	r := NewRecorder(Spec{Observables: []string{Informed}, Every: 1, MaxPoints: 4})
	for tick := 0; tick <= 100; tick++ {
		if r.Wants(tick) {
			r.Record(tick, Sample{Informed: tick})
		}
	}
	s := r.Series()
	if len(s.Steps) > 4 {
		t.Fatalf("cap exceeded: %d points", len(s.Steps))
	}
	if s.Steps[0] != 0 {
		t.Errorf("t=0 sample dropped: steps %v", s.Steps)
	}
	// Uniform stride, and it must be a power of two of the base cadence.
	stride := s.Steps[1] - s.Steps[0]
	for i := 1; i < len(s.Steps); i++ {
		if s.Steps[i]-s.Steps[i-1] != stride {
			t.Fatalf("non-uniform stride in %v", s.Steps)
		}
	}
	if stride&(stride-1) != 0 {
		t.Errorf("stride %d is not a power of two", stride)
	}
	// Values stay aligned with their steps after compaction.
	for i, st := range s.Steps {
		if s.Values[Informed][i] != float64(st) {
			t.Errorf("value at step %d = %v", st, s.Values[Informed][i])
		}
	}
}

// TestRecorderZeroAllocSteadyState pins the tentpole's allocation contract:
// once constructed (capped) or warmed (a second replicate via Reset),
// recording allocates nothing per step.
func TestRecorderZeroAllocSteadyState(t *testing.T) {
	r := NewRecorder(Spec{Observables: []string{Informed, Components, Coverage}, Every: 1, MaxPoints: 256})
	tick := 0
	allocs := testing.AllocsPerRun(10000, func() {
		if r.Wants(tick) {
			r.Record(tick, Sample{Informed: tick, Components: 3, Covered: tick, Nodes: 1024})
		}
		tick++
	})
	if allocs != 0 {
		t.Errorf("capped recorder allocates %.1f per step", allocs)
	}
	// Uncapped, reused across replicates: the second replicate's slabs are
	// already grown.
	u := NewRecorder(Spec{Observables: []string{Informed}, Every: 1})
	for i := 0; i < 5000; i++ {
		u.Record(i, Sample{Informed: i})
	}
	u.Reset()
	tick = 0
	allocs = testing.AllocsPerRun(5000, func() {
		u.Record(tick, Sample{Informed: tick})
		tick++
	})
	if allocs != 0 {
		t.Errorf("warmed uncapped recorder allocates %.1f per step", allocs)
	}
}

func TestRecorderReset(t *testing.T) {
	t.Parallel()
	r := NewRecorder(Spec{Observables: []string{Informed}, Every: 1, MaxPoints: 4})
	for i := 0; i < 32; i++ {
		if r.Wants(i) {
			r.Record(i, Sample{Informed: i})
		}
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("reset recorder holds %d points", r.Len())
	}
	if !r.Wants(1) {
		t.Error("reset did not restore the base cadence")
	}
}

func TestRecorderNeeds(t *testing.T) {
	t.Parallel()
	r := NewRecorder(Spec{Observables: []string{Informed, Largest}, Every: 1})
	if !r.Needs(Informed) || !r.Needs(Largest) || r.Needs(Coverage) {
		t.Error("Needs misreports the requested observables")
	}
	if !r.NeedsComponents() {
		t.Error("Largest should imply NeedsComponents")
	}
	if r.NeedsCoverage() {
		t.Error("Coverage not requested")
	}
	c := NewRecorder(Spec{Observables: []string{Coverage}, Every: 1})
	if c.NeedsComponents() || !c.NeedsCoverage() {
		t.Error("Coverage recorder flags wrong")
	}
}

func TestSampleValues(t *testing.T) {
	t.Parallel()
	s := Sample{Informed: 7, Components: 3, Largest: 4, Covered: 256, Nodes: 1024, Met: true}
	cases := map[string]float64{
		Informed:   7,
		Components: 3,
		Largest:    4,
		Coverage:   0.25,
		Meeting:    1,
	}
	for name, want := range cases {
		if got := s.value(name); got != want {
			t.Errorf("value(%s) = %v, want %v", name, got, want)
		}
	}
	if got := (Sample{Met: false}).value(Meeting); got != 0 {
		t.Errorf("unmet meeting value = %v", got)
	}
	if got := (Sample{Covered: 5}).value(Coverage); got != 0 {
		t.Errorf("coverage with zero nodes = %v, want 0", got)
	}
}

func TestAggregateAcrossReplicates(t *testing.T) {
	t.Parallel()
	a := &SeriesSet{Steps: []int{0, 1, 2}, Values: map[string][]float64{Informed: {1, 2, 4}}}
	b := &SeriesSet{Steps: []int{0, 1}, Values: map[string][]float64{Informed: {1, 4}}}
	agg := Aggregate([]*SeriesSet{a, nil, b})
	if len(agg) != 1 || agg[0].Name != Informed {
		t.Fatalf("aggregate = %+v", agg)
	}
	g := agg[0]
	if !reflect.DeepEqual(g.Steps, []int{0, 1, 2}) {
		t.Fatalf("steps = %v", g.Steps)
	}
	if !reflect.DeepEqual(g.N, []int{2, 2, 1}) {
		t.Errorf("n = %v", g.N)
	}
	if !reflect.DeepEqual(g.Mean, []float64{1, 3, 4}) {
		t.Errorf("mean = %v", g.Mean)
	}
	// Step 0: both replicates saw 1, so the CI collapses onto the mean.
	if g.CILow[0] != 1 || g.CIHigh[0] != 1 {
		t.Errorf("degenerate CI = [%v, %v]", g.CILow[0], g.CIHigh[0])
	}
	// Step 1: mean 3 of {2, 4} with n=2 must use t(1) = 12.706.
	se := math.Sqrt(2) / math.Sqrt(2) // stddev sqrt(2), n 2
	wantHalf := 12.706 * se
	if math.Abs((g.CIHigh[1]-g.Mean[1])-wantHalf) > 1e-9 {
		t.Errorf("CI half-width = %v, want %v", g.CIHigh[1]-g.Mean[1], wantHalf)
	}
	// Step 2: single replicate — CI collapses, never NaN.
	if g.CILow[2] != 4 || g.CIHigh[2] != 4 {
		t.Errorf("single-rep CI = [%v, %v]", g.CILow[2], g.CIHigh[2])
	}
	if Aggregate(nil) != nil || Aggregate([]*SeriesSet{nil}) != nil {
		t.Error("empty aggregate not nil")
	}
}

func TestWriteNDJSON(t *testing.T) {
	t.Parallel()
	series := []AggSeries{{
		Name:  Informed,
		Steps: []int{0, 2},
		N:     []int{2, 2},
		Mean:  []float64{1, 3.5},
		CILow: []float64{1, 2.25}, CIHigh: []float64{1, 4.75},
	}}
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, series); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	var p struct {
		Name   string  `json:"name"`
		Step   int     `json:"step"`
		N      int     `json:"n"`
		Mean   float64 `json:"mean"`
		CILow  float64 `json:"ci95_low"`
		CIHigh float64 `json:"ci95_high"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &p); err != nil {
		t.Fatal(err)
	}
	if p.Name != Informed || p.Step != 2 || p.N != 2 || p.Mean != 3.5 || p.CILow != 2.25 || p.CIHigh != 4.75 {
		t.Errorf("decoded point %+v", p)
	}
}

func TestTable(t *testing.T) {
	t.Parallel()
	series := []AggSeries{{
		Name: Coverage, Steps: []int{0}, N: []int{3},
		Mean: []float64{0.5}, CILow: []float64{0.25}, CIHigh: []float64{0.75},
	}}
	tb := Table(series)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "observable,step,n,mean,ci95_low,ci95_high\ncoverage,0,3,0.5,0.25,0.75\n"
	if buf.String() != want {
		t.Errorf("table CSV:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestKnownAndNames(t *testing.T) {
	t.Parallel()
	for _, n := range Names() {
		if !Known(n) {
			t.Errorf("Names() entry %q not Known", n)
		}
	}
	if Known("velocity") {
		t.Error("unknown observable reported known")
	}
	if len(Names()) != 5 {
		t.Errorf("Names() = %v", Names())
	}
}

// TestSeriesSetJSONDeterministic guards the encoding the result cache
// relies on: map keys marshal sorted, so equal series sets encode to equal
// bytes.
func TestSeriesSetJSONDeterministic(t *testing.T) {
	t.Parallel()
	s := &SeriesSet{Steps: []int{0, 1}, Values: map[string][]float64{
		Largest: {1, 2}, Components: {3, 2}, Informed: {1, 4},
	}}
	first, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		again, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatal("SeriesSet encoding not deterministic")
		}
	}
	if !bytes.Contains(first, []byte(`"components":[3,2]`)) {
		t.Errorf("encoding: %s", first)
	}
}
