// Package agent manages populations of mobile agents: their uniform random
// initial placement and their synchronized lazy-random-walk motion, exactly
// as specified in the paper's §2 model. The population is the substrate all
// dissemination processes (core, frog, predator) run on.
package agent

import (
	"fmt"

	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
	"mobilenet/internal/walk"
)

// Population is a set of k agents on a grid. Positions are exposed as a
// slice for the benefit of the per-step hot loops in the dissemination
// engines; treat it as read-only outside this package and use SetPosition
// for mutations so invariants hold.
type Population struct {
	g   *grid.Grid
	pos []grid.Point
	src *rng.Source
	t   int
}

// New places k agents uniformly and independently at random on g, drawing
// randomness from src. It returns an error for non-positive k or nil inputs.
//
// The paper's sparse regime assumes n >= 2k; New does not enforce that —
// denser populations are legal and used by the supercritical contrast
// experiments — but callers can check Sparse().
func New(g *grid.Grid, k int, src *rng.Source) (*Population, error) {
	if g == nil {
		return nil, fmt.Errorf("agent: nil grid")
	}
	if src == nil {
		return nil, fmt.Errorf("agent: nil randomness source")
	}
	if k <= 0 {
		return nil, fmt.Errorf("agent: population size must be positive, got %d", k)
	}
	p := &Population{
		g:   g,
		pos: make([]grid.Point, k),
		src: src,
	}
	side := g.Side()
	for i := range p.pos {
		p.pos[i] = grid.Point{X: int32(src.Intn(side)), Y: int32(src.Intn(side))}
	}
	return p, nil
}

// K returns the number of agents.
func (p *Population) K() int { return len(p.pos) }

// Grid returns the underlying grid.
func (p *Population) Grid() *grid.Grid { return p.g }

// Time returns the number of synchronized steps taken so far.
func (p *Population) Time() int { return p.t }

// Sparse reports whether the population is in the paper's sparse regime
// n >= 2k.
func (p *Population) Sparse() bool { return p.g.N() >= 2*len(p.pos) }

// Position returns the position of agent i.
func (p *Population) Position(i int) grid.Point { return p.pos[i] }

// SetPosition moves agent i to q (clamped onto the grid). It is intended
// for test setup and scenario construction, not for use mid-simulation.
func (p *Population) SetPosition(i int, q grid.Point) {
	p.pos[i] = p.g.Clamp(q)
}

// Positions returns the internal position slice. The caller must not modify
// it; it is exposed to keep per-step component computation allocation-free.
func (p *Population) Positions() []grid.Point { return p.pos }

// Step advances every agent one lazy-walk step, synchronously.
func (p *Population) Step() {
	g, src := p.g, p.src
	for i := range p.pos {
		p.pos[i] = walk.Step(g, p.pos[i], src)
	}
	p.t++
}

// StepAgent advances only agent i (used by the Frog model, where inactive
// agents stay frozen).
func (p *Population) StepAgent(i int) {
	p.pos[i] = walk.Step(p.g, p.pos[i], p.src)
}

// Tick records the passage of one global time step without moving anyone;
// model variants that move a subset of agents call this once per step.
func (p *Population) Tick() { p.t++ }

// MaxPairwiseDistance returns the largest Manhattan distance from agent
// `from` to any other agent, and the index of that agent. It returns (0,
// from) for single-agent populations.
func (p *Population) MaxPairwiseDistance(from int) (dist, agentIdx int) {
	agentIdx = from
	for i := range p.pos {
		if i == from {
			continue
		}
		if d := grid.ManhattanPoints(p.pos[from], p.pos[i]); d > dist {
			dist, agentIdx = d, i
		}
	}
	return dist, agentIdx
}
