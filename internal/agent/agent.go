// Package agent manages populations of mobile agents: their initial
// placement and their synchronized motion. Motion is delegated to a
// mobility.Model — the default is the paper's §2 lazy random walk — and the
// population is the substrate all dissemination processes (core, frog,
// predator) run on.
package agent

import (
	"fmt"

	"mobilenet/internal/grid"
	"mobilenet/internal/mobility"
	"mobilenet/internal/rng"
)

// Population is a set of k agents on a grid. Positions are exposed as a
// slice for the benefit of the per-step hot loops in the dissemination
// engines; treat it as read-only outside this package and use SetPosition
// for mutations so invariants hold.
type Population struct {
	g     *grid.Grid
	pos   []grid.Point
	t     int
	model mobility.Model
	mob   mobility.State
}

// New places k agents on g under the default lazy-walk model, drawing
// randomness from src. It returns an error for non-positive k or nil
// inputs. Placement is uniform and independent, the paper's initial
// condition.
//
// The paper's sparse regime assumes n >= 2k; New does not enforce that —
// denser populations are legal and used by the supercritical contrast
// experiments — but callers can check Sparse().
func New(g *grid.Grid, k int, src *rng.Source) (*Population, error) {
	return NewWithModel(g, k, src, nil)
}

// NewWithModel places k agents on g moving under the given mobility model;
// nil selects the default lazy walk. The model's state draws all its
// randomness (placement included) from src, so a run remains reproducible
// from one seed.
func NewWithModel(g *grid.Grid, k int, src *rng.Source, m mobility.Model) (*Population, error) {
	if g == nil {
		return nil, fmt.Errorf("agent: nil grid")
	}
	if src == nil {
		return nil, fmt.Errorf("agent: nil randomness source")
	}
	if k <= 0 {
		return nil, fmt.Errorf("agent: population size must be positive, got %d", k)
	}
	if m == nil {
		m = mobility.Default()
	}
	st, err := m.Bind(g, k, src)
	if err != nil {
		return nil, err
	}
	p := &Population{
		g:     g,
		pos:   make([]grid.Point, k),
		model: m,
		mob:   st,
	}
	st.Place(p.pos)
	return p, nil
}

// K returns the number of agents.
func (p *Population) K() int { return len(p.pos) }

// Grid returns the underlying grid.
func (p *Population) Grid() *grid.Grid { return p.g }

// Model returns the mobility model driving the population.
func (p *Population) Model() mobility.Model { return p.model }

// Time returns the number of synchronized steps taken so far.
func (p *Population) Time() int { return p.t }

// Sparse reports whether the population is in the paper's sparse regime
// n >= 2k.
func (p *Population) Sparse() bool { return p.g.N() >= 2*len(p.pos) }

// Position returns the position of agent i.
func (p *Population) Position(i int) grid.Point { return p.pos[i] }

// SetPosition moves agent i to q (clamped onto the grid). It is intended
// for test setup and scenario construction, not for use mid-simulation.
func (p *Population) SetPosition(i int, q grid.Point) {
	p.pos[i] = p.g.Clamp(q)
}

// Positions returns the internal position slice. The caller must not modify
// it; it is exposed to keep per-step component computation allocation-free.
func (p *Population) Positions() []grid.Point { return p.pos }

// Step advances every agent one step of the mobility model, synchronously.
func (p *Population) Step() {
	p.mob.Step(p.pos)
	p.t++
}

// StepMoved advances every agent exactly like Step and, when the mobility
// state implements mobility.MovedStepper, appends the indices of agents
// whose position changed to moved (ascending) and returns it with ok true.
// When the model cannot report moves the population still steps — through
// the ordinary Step path, consuming randomness identically — and StepMoved
// returns the slice unchanged with ok false, meaning "every agent may have
// moved". Trajectories are bit-identical either way.
func (p *Population) StepMoved(moved []int32) (out []int32, ok bool) {
	if ms, can := p.mob.(mobility.MovedStepper); can {
		moved = ms.StepMoved(p.pos, moved)
		p.t++
		return moved, true
	}
	p.mob.Step(p.pos)
	p.t++
	return moved, false
}

// StepAgent advances only agent i (used by the Frog model, where inactive
// agents stay frozen).
func (p *Population) StepAgent(i int) {
	p.mob.StepAgent(p.pos, i)
}

// Tick records the passage of one global time step without moving anyone;
// model variants that move a subset of agents call this once per step.
func (p *Population) Tick() { p.t++ }

// MaxPairwiseDistance returns the largest Manhattan distance from agent
// `from` to any other agent, and the index of that agent. It returns (0,
// from) for single-agent populations.
func (p *Population) MaxPairwiseDistance(from int) (dist, agentIdx int) {
	agentIdx = from
	for i := range p.pos {
		if i == from {
			continue
		}
		if d := grid.ManhattanPoints(p.pos[from], p.pos[i]); d > dist {
			dist, agentIdx = d, i
		}
	}
	return dist, agentIdx
}
