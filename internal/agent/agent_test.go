package agent

import (
	"testing"

	"mobilenet/internal/grid"
	"mobilenet/internal/rng"
	"mobilenet/internal/stats"
)

func TestNewValidation(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(8)
	src := rng.New(1)
	if _, err := New(nil, 4, src); err == nil {
		t.Error("nil grid accepted")
	}
	if _, err := New(g, 4, nil); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := New(g, 0, src); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(g, -3, src); err == nil {
		t.Error("negative k accepted")
	}
	p, err := New(g, 5, src)
	if err != nil {
		t.Fatal(err)
	}
	if p.K() != 5 || p.Grid() != g || p.Time() != 0 {
		t.Errorf("basic accessors wrong: k=%d t=%d", p.K(), p.Time())
	}
}

func TestInitialPlacementOnGridAndUniform(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(8) // 64 nodes
	p, err := New(g, 64000, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, g.N())
	for i := 0; i < p.K(); i++ {
		q := p.Position(i)
		if !g.Contains(q) {
			t.Fatalf("agent %d off-grid at %v", i, q)
		}
		counts[g.ID(q)]++
	}
	stat, rejected, err := stats.ChiSquareUniform(counts, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if rejected {
		t.Errorf("initial placement not uniform: chi2=%.1f", stat)
	}
}

func TestStepSynchronized(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(16)
	p, err := New(g, 10, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	before := make([]grid.Point, p.K())
	copy(before, p.Positions())
	p.Step()
	if p.Time() != 1 {
		t.Errorf("Time = %d after one Step", p.Time())
	}
	for i := 0; i < p.K(); i++ {
		d := grid.ManhattanPoints(before[i], p.Position(i))
		if d > 1 {
			t.Errorf("agent %d moved distance %d in one step", i, d)
		}
		if !g.Contains(p.Position(i)) {
			t.Errorf("agent %d off grid after step", i)
		}
	}
}

func TestStepAgentMovesOnlyOne(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(16)
	p, err := New(g, 8, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	before := make([]grid.Point, p.K())
	copy(before, p.Positions())
	// Step agent 3 repeatedly; everyone else must remain fixed.
	for i := 0; i < 50; i++ {
		p.StepAgent(3)
	}
	for i := 0; i < p.K(); i++ {
		if i == 3 {
			continue
		}
		if p.Position(i) != before[i] {
			t.Errorf("agent %d moved during StepAgent(3)", i)
		}
	}
	if p.Time() != 0 {
		t.Errorf("StepAgent advanced global time to %d", p.Time())
	}
	p.Tick()
	if p.Time() != 1 {
		t.Errorf("Tick did not advance time")
	}
}

func TestSetPositionClamps(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(4)
	p, err := New(g, 2, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	p.SetPosition(0, grid.Point{X: -10, Y: 99})
	if got := p.Position(0); got != (grid.Point{X: 0, Y: 3}) {
		t.Errorf("SetPosition clamped to %v, want (0,3)", got)
	}
}

func TestSparse(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(4) // 16 nodes
	sparse, err := New(g, 8, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.Sparse() {
		t.Error("k=8, n=16 should be sparse (n >= 2k)")
	}
	dense, err := New(g, 9, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if dense.Sparse() {
		t.Error("k=9, n=16 should not be sparse")
	}
}

func TestMaxPairwiseDistance(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(10)
	p, err := New(g, 3, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	p.SetPosition(0, grid.Point{X: 0, Y: 0})
	p.SetPosition(1, grid.Point{X: 3, Y: 3})
	p.SetPosition(2, grid.Point{X: 9, Y: 9})
	d, idx := p.MaxPairwiseDistance(0)
	if d != 18 || idx != 2 {
		t.Errorf("MaxPairwiseDistance = (%d, %d), want (18, 2)", d, idx)
	}
	d, idx = p.MaxPairwiseDistance(2)
	if d != 18 || idx != 0 {
		t.Errorf("MaxPairwiseDistance from 2 = (%d, %d), want (18, 0)", d, idx)
	}
}

func TestMaxPairwiseDistanceSingleAgent(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(5)
	p, err := New(g, 1, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	d, idx := p.MaxPairwiseDistance(0)
	if d != 0 || idx != 0 {
		t.Errorf("single agent distance = (%d,%d), want (0,0)", d, idx)
	}
}

func TestDeterministicPopulations(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(12)
	p1, _ := New(g, 20, rng.New(11))
	p2, _ := New(g, 20, rng.New(11))
	for s := 0; s < 100; s++ {
		p1.Step()
		p2.Step()
	}
	for i := 0; i < 20; i++ {
		if p1.Position(i) != p2.Position(i) {
			t.Fatalf("populations with equal seeds diverged at agent %d", i)
		}
	}
}

func BenchmarkPopulationStep(b *testing.B) {
	g := grid.MustNew(128)
	p, err := New(g, 256, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}
