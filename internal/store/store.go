// Package store is a disk-backed, content-hash-addressed result store: the
// spill tier that sits under the simulation service's in-memory LRU. Every
// entry is one file holding the exact payload bytes the service computed
// for a content hash (results under the scenario hash, rendered series
// under the hash#series key), so a daemon restart loses nothing — a spec
// whose result was ever computed on this disk is answered without running
// a simulation, byte-identical to the original response.
//
// Durability is the point, so the write path is paranoid: an entry is
// written to a temporary file, fsynced, and renamed into place, and the
// payload is framed by a fixed header carrying a magic, the key, the
// payload length and a CRC32C checksum. A torn, truncated or bit-flipped
// entry — a crash mid-write, a lying disk — fails verification on read and
// is treated as a miss (and deleted), never served. The store is bounded
// by total payload bytes; when an insert would exceed the bound, the
// least recently accessed entries are evicted first (access order is
// tracked in memory and seeded from file modification times at Open, so
// restarts approximate the pre-restart recency order).
//
// The store is safe for concurrent use. A Get never blocks on another
// entry's disk write, and a reader racing an eviction of the same entry
// observes a clean miss, not an error — cache semantics throughout.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// entryExt is the filename extension of a committed entry. Temporary files
// carry tmpPrefix instead and are swept at Open — a crash between create
// and rename leaves garbage, never a half-visible entry.
const (
	entryExt  = ".res"
	tmpPrefix = ".tmp-"
)

// magic opens every entry file; a file that does not start with it is not
// an entry (or is torn inside the header) and is dropped as corrupt.
var magic = [4]byte{'M', 'N', 'S', '1'}

// castagnoli is the CRC32C table; Castagnoli is hardware-accelerated on
// the platforms the daemon runs on, and a 32-bit checksum is plenty to
// detect torn writes (the threat model is crashes, not adversaries — the
// key itself is already a SHA-256 of the content's spec).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxKeyLen bounds a stored key; keys are content hashes plus a short
// suffix, so anything longer is a caller bug.
const maxKeyLen = 256

// ErrKeyTooLong reports a Put with a key longer than the header can frame.
var ErrKeyTooLong = errors.New("store: key exceeds 256 bytes")

// Store is the disk tier. Construct with Open; the zero value is not
// usable.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*entry // key -> live entry
	head    *entry            // most recently accessed
	tail    *entry            // least recently accessed (next eviction)
	total   int64             // payload bytes of live entries

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	corrupt   atomic.Uint64
	writeErrs atomic.Uint64
}

// entry is one live key's in-memory record, threaded on an intrusive
// doubly linked access list (front = most recent).
type entry struct {
	key        string
	size       int64 // payload bytes
	next, prev *entry
}

// Stats is a point-in-time snapshot of the store's counters and gauges,
// for telemetry exposition.
type Stats struct {
	// Entries and Bytes gauge the live store (payload bytes, excluding
	// header overhead).
	Entries int
	Bytes   int64
	// Hits and Misses count Get outcomes; Evictions counts entries dropped
	// for space; Corrupt counts entries that failed verification on read
	// or at Open and were deleted; WriteErrors counts Puts that failed to
	// commit (the store stays consistent — the entry is simply absent).
	Hits, Misses, Evictions, Corrupt, WriteErrors uint64
}

// Open opens (creating if needed) the store rooted at dir, bounded by
// maxBytes of payload. Committed entries found on disk are verified
// lazily — Open only reads headers, not payloads — and adopted with their
// file modification time as the initial recency order; leftover temporary
// files from a crashed writer are deleted. maxBytes must be positive.
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		return nil, fmt.Errorf("store: max bytes must be positive, got %d", maxBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		entries:  make(map[string]*entry),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recovered pairs an adopted entry with its modification time for the
// initial recency sort.
type recovered struct {
	e     *entry
	mtime int64
}

// recover scans the directory: temporary files are deleted, committed
// entries have their headers read back (a file whose header does not
// parse, or whose on-disk size disagrees with its framed payload length,
// is corrupt and deleted), and survivors are adopted oldest-first so the
// in-memory access list reproduces the on-disk recency order.
func (s *Store) recover() error {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var found []recovered
	for _, de := range des {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasPrefix(name, tmpPrefix) {
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		if !strings.HasSuffix(name, entryExt) {
			continue
		}
		path := filepath.Join(s.dir, name)
		key, size, err := readHeader(path)
		if err != nil {
			s.corrupt.Add(1)
			os.Remove(path)
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		found = append(found, recovered{
			e:     &entry{key: key, size: size},
			mtime: info.ModTime().UnixNano(),
		})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })
	for _, r := range found {
		if old, ok := s.entries[r.e.key]; ok {
			// Two files claiming one key (renamed under different names
			// cannot happen via Put, but be defensive): keep the newer.
			s.unlink(old)
			s.total -= old.size
			delete(s.entries, old.key)
			os.Remove(s.path(old.key))
		}
		s.entries[r.e.key] = r.e
		s.pushFront(r.e)
		s.total += r.e.size
	}
	s.evictLocked()
	return nil
}

// path returns the entry file for a key. Keys are content hashes plus an
// optional #suffix; '#' is the only byte outside the hex alphabet a
// service key carries, and it is mapped to '+' (path-safe on every
// platform the daemon targets). Other unusual bytes would collide only if
// a caller stored both variants of the same key, which no caller does —
// the framed header carries the exact key, so a collision would surface
// as a key mismatch (= corrupt), never as wrong bytes served.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, strings.ReplaceAll(key, "#", "+")+entryExt)
}

// header layout after the magic: keyLen uint16, key, payloadLen uint64,
// crc32c uint32, payload.
const fixedHeader = 4 + 2 + 8 + 4

// readHeader opens an entry file and parses its frame without reading the
// payload, returning the framed key and payload size. The on-disk size
// must match the framed length exactly — a truncated (torn) file fails
// here even before a checksum is computed.
func readHeader(path string) (key string, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	var fixed [6]byte
	if _, err := f.ReadAt(fixed[:], 0); err != nil {
		return "", 0, fmt.Errorf("store: short header: %w", err)
	}
	if [4]byte(fixed[:4]) != magic {
		return "", 0, fmt.Errorf("store: bad magic")
	}
	keyLen := int(binary.LittleEndian.Uint16(fixed[4:6]))
	if keyLen == 0 || keyLen > maxKeyLen {
		return "", 0, fmt.Errorf("store: implausible key length %d", keyLen)
	}
	rest := make([]byte, keyLen+12)
	if _, err := f.ReadAt(rest, 6); err != nil {
		return "", 0, fmt.Errorf("store: short header: %w", err)
	}
	key = string(rest[:keyLen])
	payloadLen := binary.LittleEndian.Uint64(rest[keyLen : keyLen+8])
	info, err := f.Stat()
	if err != nil {
		return "", 0, err
	}
	want := int64(fixedHeader+keyLen) + int64(payloadLen)
	if payloadLen > 1<<62 || info.Size() != want {
		return "", 0, fmt.Errorf("store: size %d disagrees with framed length %d", info.Size(), want)
	}
	return key, int64(payloadLen), nil
}

// Get returns the payload stored under key, or ok=false. A hit promotes
// the entry to most recently accessed. An entry that fails verification —
// wrong magic, framed key mismatch, truncation, checksum mismatch — is
// counted corrupt, deleted, and reported as a miss: a torn write is never
// served.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		s.moveFront(e)
	}
	s.mu.Unlock()
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	// The read happens outside the lock so one slow disk read cannot
	// serialise the whole service. An eviction racing this read unlinks
	// the file first; the resulting open error is a clean miss.
	payload, err := readVerify(s.path(key), key)
	switch {
	case err == nil:
		s.hits.Add(1)
		return payload, true
	case os.IsNotExist(err):
		s.misses.Add(1)
		return nil, false
	default:
		s.corrupt.Add(1)
		s.misses.Add(1)
		s.dropEntry(key)
		return nil, false
	}
}

// readVerify reads an entry file end to end and verifies its frame: magic,
// framed key (the file must be the entry it is addressed as), length and
// checksum.
func readVerify(path, key string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < fixedHeader || [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("store: bad magic")
	}
	keyLen := int(binary.LittleEndian.Uint16(data[4:6]))
	if keyLen == 0 || keyLen > maxKeyLen || len(data) < fixedHeader+keyLen {
		return nil, fmt.Errorf("store: torn header")
	}
	if string(data[6:6+keyLen]) != key {
		return nil, fmt.Errorf("store: entry frames key %q, addressed as %q", data[6:6+keyLen], key)
	}
	off := 6 + keyLen
	payloadLen := binary.LittleEndian.Uint64(data[off : off+8])
	sum := binary.LittleEndian.Uint32(data[off+8 : off+12])
	payload := data[fixedHeader+keyLen:]
	if uint64(len(payload)) != payloadLen {
		return nil, fmt.Errorf("store: torn payload: have %d bytes, framed %d", len(payload), payloadLen)
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, fmt.Errorf("store: checksum mismatch")
	}
	return payload, nil
}

// dropEntry removes a (corrupt) entry from the index and the disk.
func (s *Store) dropEntry(key string) {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.unlink(e)
		s.total -= e.size
		delete(s.entries, key)
	}
	s.mu.Unlock()
	os.Remove(s.path(key))
}

// Put stores payload under key, replacing any existing entry, and evicts
// least-recently-accessed entries as needed to respect the byte bound. The
// write is committed — temp file, fsync, rename — before the entry becomes
// visible, so a concurrent Get sees either the old complete entry or the
// new complete entry, never a partial one. A payload larger than the
// store's entire bound is declined silently (storing it would evict
// everything for one entry); a disk error counts in WriteErrors and
// leaves the store consistent.
func (s *Store) Put(key string, payload []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return ErrKeyTooLong
	}
	if int64(len(payload)) > s.maxBytes {
		return nil
	}
	if err := s.commit(key, payload); err != nil {
		s.writeErrs.Add(1)
		return err
	}
	s.mu.Lock()
	if old, ok := s.entries[key]; ok {
		s.unlink(old)
		s.total -= old.size
		delete(s.entries, key)
	}
	e := &entry{key: key, size: int64(len(payload))}
	s.entries[key] = e
	s.pushFront(e)
	s.total += e.size
	s.evictLocked()
	s.mu.Unlock()
	return nil
}

// commit writes the framed entry to a temp file, fsyncs it, and renames it
// into place. The rename is atomic on POSIX filesystems, which is what
// lets readers run lock-free against writers.
func (s *Store) commit(key string, payload []byte) error {
	f, err := os.CreateTemp(s.dir, tmpPrefix)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	header := make([]byte, fixedHeader+len(key))
	copy(header[:4], magic[:])
	binary.LittleEndian.PutUint16(header[4:6], uint16(len(key)))
	copy(header[6:], key)
	off := 6 + len(key)
	binary.LittleEndian.PutUint64(header[off:off+8], uint64(len(payload)))
	binary.LittleEndian.PutUint32(header[off+8:off+12], crc32.Checksum(payload, castagnoli))
	_, err = f.Write(header)
	if err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, s.path(key))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// evictLocked drops least-recently-accessed entries until the byte bound
// holds. Callers hold s.mu; file removal happens inline — unlink is fast,
// and doing it under the lock means a concurrent Get of the victim fails
// its open and reports a clean miss instead of racing a half-removed
// index.
func (s *Store) evictLocked() {
	for s.total > s.maxBytes && s.tail != nil {
		victim := s.tail
		s.unlink(victim)
		s.total -= victim.size
		delete(s.entries, victim.key)
		os.Remove(s.path(victim.key))
		s.evictions.Add(1)
	}
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes returns the live payload bytes.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Stats returns a snapshot of the store's counters and gauges.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, bytes := len(s.entries), s.total
	s.mu.Unlock()
	return Stats{
		Entries: entries, Bytes: bytes,
		Hits: s.hits.Load(), Misses: s.misses.Load(),
		Evictions: s.evictions.Load(), Corrupt: s.corrupt.Load(),
		WriteErrors: s.writeErrs.Load(),
	}
}

// Access-list surgery. The list is intrusive (entries are the nodes), so
// promotion on the Get path allocates nothing.

func (s *Store) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *Store) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.head == e {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *Store) moveFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
