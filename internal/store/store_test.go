package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, dir string, max int64) *Store {
	t.Helper()
	s, err := Open(dir, max)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	t.Parallel()
	s := mustOpen(t, t.TempDir(), 1<<20)
	payload := []byte(`{"hash":"abc","result":42}`)
	if err := s.Put("abc123", payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get("abc123")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want payload back", got, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get(missing) reported a hit")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != int64(len(payload)) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSeriesKeySpills(t *testing.T) {
	t.Parallel()
	s := mustOpen(t, t.TempDir(), 1<<20)
	ndjson := []byte("{\"step\":0}\n{\"step\":1}\n")
	key := "deadbeef#series"
	if err := s.Put(key, ndjson); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, ndjson) {
		t.Fatalf("series round trip failed: %q %v", got, ok)
	}
	// The '#' must not leak into the filename.
	des, err := os.ReadDir(s.dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if bytes.ContainsRune([]byte(de.Name()), '#') {
			t.Fatalf("entry filename %q contains '#'", de.Name())
		}
	}
}

// TestRestartRecoversCache is the durability pin: payloads put before a
// "daemon restart" (new Store over the same dir) come back byte-identical.
func TestRestartRecoversCache(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s := mustOpen(t, dir, 1<<20)
	want := map[string][]byte{
		"aaaa":        []byte("payload-a"),
		"bbbb":        bytes.Repeat([]byte("b"), 4096),
		"cccc#series": []byte("{\"s\":0}\n"),
	}
	for k, v := range want {
		if err := s.Put(k, v); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}

	s2 := mustOpen(t, dir, 1<<20)
	if s2.Len() != len(want) {
		t.Fatalf("recovered %d entries, want %d", s2.Len(), len(want))
	}
	for k, v := range want {
		got, ok := s2.Get(k)
		if !ok {
			t.Fatalf("key %s lost across restart", k)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("key %s not byte-identical after restart: got %d bytes, want %d", k, len(got), len(v))
		}
	}
}

// TestTruncatedEntryIsMiss simulates a torn write: an entry file cut short
// at every possible boundary must read as a miss, never as a payload.
func TestTruncatedEntryIsMiss(t *testing.T) {
	t.Parallel()
	for _, cut := range []string{"header", "key", "payload"} {
		cut := cut
		t.Run(cut, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			s := mustOpen(t, dir, 1<<20)
			payload := bytes.Repeat([]byte("x"), 1000)
			if err := s.Put("feedface", payload); err != nil {
				t.Fatal(err)
			}
			path := s.path("feedface")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var n int
			switch cut {
			case "header":
				n = 3 // inside the magic
			case "key":
				n = 8 // inside the framed key
			case "payload":
				n = len(data) - 100
			}
			if err := os.WriteFile(path, data[:n], 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get("feedface"); ok {
				t.Fatalf("torn entry served: %d bytes", len(got))
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("torn entry not deleted")
			}
			// Recovery over a torn file (simulating restart after the crash)
			// must also drop it.
			if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
				t.Fatal(err)
			}
			s2 := mustOpen(t, dir, 1<<20)
			if _, ok := s2.Get("feedface"); ok {
				t.Fatal("restart adopted a torn entry")
			}
		})
	}
}

// TestChecksumMismatchIsMiss flips a payload bit in place: the length still
// matches, so only the CRC can catch it.
func TestChecksumMismatchIsMiss(t *testing.T) {
	t.Parallel()
	s := mustOpen(t, t.TempDir(), 1<<20)
	payload := bytes.Repeat([]byte("y"), 512)
	if err := s.Put("cafe", payload); err != nil {
		t.Fatal(err)
	}
	path := s.path("cafe")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("cafe"); ok {
		t.Fatal("bit-flipped entry served")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", st.Corrupt)
	}
}

// TestWrongKeyFrameIsMiss renames one entry's file over another key's path:
// the framed key no longer matches the addressed key, so the entry must not
// be served under the wrong hash.
func TestWrongKeyFrameIsMiss(t *testing.T) {
	t.Parallel()
	s := mustOpen(t, t.TempDir(), 1<<20)
	if err := s.Put("key-a", []byte("payload-a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("key-b", []byte("payload-b")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.path("key-a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path("key-b"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("key-b"); ok {
		t.Fatalf("cross-keyed entry served as key-b: %q", got)
	}
}

func TestEvictionOldestFirst(t *testing.T) {
	t.Parallel()
	// Bound fits exactly four 100-byte payloads.
	s := mustOpen(t, t.TempDir(), 400)
	pay := func(i int) []byte { return bytes.Repeat([]byte{byte('a' + i)}, 100) }
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), pay(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := s.Get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	if err := s.Put("k4", pay(4)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k1"); ok {
		t.Fatal("k1 survived eviction; LRU order wrong")
	}
	for _, k := range []string{"k0", "k2", "k3", "k4"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if st := s.Stats(); st.Evictions != 1 || st.Bytes != 400 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOversizedPayloadDeclined(t *testing.T) {
	t.Parallel()
	s := mustOpen(t, t.TempDir(), 100)
	if err := s.Put("big", bytes.Repeat([]byte("z"), 101)); err != nil {
		t.Fatalf("oversized Put should be a silent decline, got %v", err)
	}
	if s.Len() != 0 {
		t.Fatal("oversized payload was stored")
	}
}

// TestConcurrentReadDuringEvict hammers Get on keys that a writer is
// concurrently evicting via fresh Puts. Every Get must return either the
// exact payload or a clean miss — no errors, no corrupt counts, no torn
// reads. Run with -race.
func TestConcurrentReadDuringEvict(t *testing.T) {
	t.Parallel()
	// Room for ~8 of the 64 keys: every Put evicts.
	s := mustOpen(t, t.TempDir(), 8*128)
	payloadFor := func(i int) []byte {
		return bytes.Repeat([]byte{byte(i)}, 128)
	}
	const keys = 64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("k%02d", i%keys)
				if got, ok := s.Get(k); ok && !bytes.Equal(got, payloadFor(i%keys)) {
					t.Errorf("torn read on %s: %d bytes", k, len(got))
					return
				}
				i++
			}
		}(g * 7)
	}
	for round := 0; round < 4; round++ {
		for i := 0; i < keys; i++ {
			if err := s.Put(fmt.Sprintf("k%02d", i), payloadFor(i)); err != nil {
				t.Errorf("Put: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if st := s.Stats(); st.Corrupt != 0 {
		t.Fatalf("reads racing eviction counted %d corrupt entries", st.Corrupt)
	}
	if b := s.Bytes(); b > 8*128 {
		t.Fatalf("store over budget: %d bytes", b)
	}
}

// TestRecoverSweepsTempFiles checks a crashed writer's droppings are
// removed at Open and never adopted as entries.
func TestRecoverSweepsTempFiles(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	tmp := filepath.Join(dir, tmpPrefix+"12345")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, 1<<20)
	if s.Len() != 0 {
		t.Fatal("temp file adopted as an entry")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("temp file not swept at Open")
	}
}

// TestRecoverRespectsBound opens a directory holding more bytes than the
// new bound allows; the oldest entries must be evicted at Open.
func TestRecoverRespectsBound(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s := mustOpen(t, dir, 1<<20)
	for i := 0; i < 4; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte("p"), 100)); err != nil {
			t.Fatal(err)
		}
	}
	s2 := mustOpen(t, dir, 250) // room for two
	if n := s2.Len(); n != 2 {
		t.Fatalf("recovered %d entries under a 2-entry bound", n)
	}
}

func TestReplaceSameKey(t *testing.T) {
	t.Parallel()
	s := mustOpen(t, t.TempDir(), 1<<20)
	if err := s.Put("k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("newer-payload")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k")
	if !ok || string(got) != "newer-payload" {
		t.Fatalf("Get after replace = %q, %v", got, ok)
	}
	if st := s.Stats(); st.Entries != 1 || st.Bytes != int64(len("newer-payload")) {
		t.Fatalf("stats after replace = %+v", st)
	}
}

func TestKeyValidation(t *testing.T) {
	t.Parallel()
	s := mustOpen(t, t.TempDir(), 1<<20)
	if err := s.Put("", []byte("x")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.Put(string(bytes.Repeat([]byte("k"), 300)), []byte("x")); err == nil {
		t.Fatal("oversized key accepted")
	}
}
