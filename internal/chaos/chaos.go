// Package chaos is the fault-injection harness for the simulation
// service. Production code declares named injection points; an Injector
// parsed from a -chaos spec decides, per ask, whether the fault fires.
// With no injector configured every probe is a nil-receiver call that
// compiles down to a constant-false branch, so the harness costs
// nothing when it is off — the same discipline as prof.StepProfile and
// cancel.Check.
//
// A spec is a comma-separated list of faults:
//
//	point:rate[xCount][:duration]
//
//	worker-panic:0.01           panic in ~1% of replicate executions
//	worker-panic:1x1            panic exactly once, then disarm
//	slow-step:0.05:2ms          2ms stall at ~5% of cancellation polls
//	queue-latency:0.2:500us     500µs stall after ~20% of dequeues
//	cache-write-error:0.1       drop ~10% of result-cache writes
//
// rate is a probability in [0, 1]; xCount caps the total number of
// firings; duration (required for the delay points, rejected elsewhere)
// is the injected stall. Draws come from a deterministic counter-hash
// sequence so a seeded run is reproducible and the injector is safe for
// concurrent use without locks.
package chaos

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// The named injection points. Production code asks for them by
// constant; Parse rejects anything else so a typo in a -chaos spec is
// a startup error, not a silently inert fault.
const (
	// SlowStep stalls a replicate inside its engine step loop, at the
	// amortized cancellation poll (see cancel.WithHook).
	SlowStep = "slow-step"
	// WorkerPanic panics in the worker immediately before a replicate
	// executes, exercising the recover boundary.
	WorkerPanic = "worker-panic"
	// CacheWriteError drops the result-cache write of a finished job:
	// the job still completes, later fetches by hash miss.
	CacheWriteError = "cache-write-error"
	// QueueLatency stalls a worker after it dequeues a task, inflating
	// queue wait for everyone behind it.
	QueueLatency = "queue-latency"
)

// delayPoints are the points that carry (and require) a duration.
var delayPoints = map[string]bool{SlowStep: true, QueueLatency: true}

// Points returns the registered injection-point names, sorted.
func Points() []string {
	pts := []string{SlowStep, WorkerPanic, CacheWriteError, QueueLatency}
	sort.Strings(pts)
	return pts
}

type fault struct {
	rate      float64
	delay     time.Duration
	remaining atomic.Int64 // firings left; negative = unlimited
	draws     atomic.Uint64
}

// Injector holds the parsed fault set. A nil *Injector is valid and
// never fires. All methods are safe for concurrent use.
type Injector struct {
	faults map[string]*fault
	seed   uint64
	onFire atomic.Pointer[func(point string)]
}

// Parse builds an Injector from a -chaos spec. An empty spec returns
// (nil, nil): chaos off.
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := &Injector{faults: make(map[string]*fault), seed: 0x9e3779b97f4a7c15}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if err := in.parseFault(part); err != nil {
			return nil, fmt.Errorf("chaos: fault %q: %w", part, err)
		}
	}
	if len(in.faults) == 0 {
		return nil, fmt.Errorf("chaos: spec %q declares no faults", spec)
	}
	return in, nil
}

func (in *Injector) parseFault(part string) error {
	fields := strings.Split(part, ":")
	if len(fields) < 2 {
		return fmt.Errorf("want point:rate[xCount][:duration]")
	}
	point := fields[0]
	known := false
	for _, p := range Points() {
		if p == point {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown injection point %q (have %s)", point, strings.Join(Points(), ", "))
	}
	if _, dup := in.faults[point]; dup {
		return fmt.Errorf("point %q declared twice", point)
	}

	rateField := fields[1]
	count := int64(-1)
	if i := strings.IndexByte(rateField, 'x'); i >= 0 {
		n, err := strconv.ParseInt(rateField[i+1:], 10, 64)
		if err != nil || n <= 0 {
			return fmt.Errorf("bad count %q", rateField[i+1:])
		}
		count = n
		rateField = rateField[:i]
	}
	rate, err := strconv.ParseFloat(rateField, 64)
	if err != nil || math.IsNaN(rate) || rate < 0 || rate > 1 {
		return fmt.Errorf("rate %q not a probability in [0, 1]", rateField)
	}

	f := &fault{rate: rate}
	f.remaining.Store(count)
	if len(fields) >= 3 {
		if !delayPoints[point] {
			return fmt.Errorf("point %q takes no duration", point)
		}
		d, err := time.ParseDuration(fields[2])
		if err != nil || d <= 0 {
			return fmt.Errorf("bad duration %q", fields[2])
		}
		f.delay = d
	} else if delayPoints[point] {
		return fmt.Errorf("point %q requires a duration (e.g. %s:%g:1ms)", point, point, rate)
	}
	if len(fields) > 3 {
		return fmt.Errorf("trailing fields after duration")
	}
	in.faults[point] = f
	return nil
}

// OnFire registers an observer called with the point name each time a
// fault fires (the service hooks its chaos-injection counter here).
// Later registrations replace earlier ones.
func (in *Injector) OnFire(fn func(point string)) {
	if in == nil || fn == nil {
		return
	}
	in.onFire.Store(&fn)
}

// Active reports whether the injector carries a fault for point,
// regardless of rate or remaining count. The service uses it to avoid
// installing hooks for points that can never fire.
func (in *Injector) Active(point string) bool {
	if in == nil {
		return false
	}
	_, ok := in.faults[point]
	return ok
}

// Fire reports whether the fault at point fires on this ask. It
// consumes one draw from the deterministic sequence and one unit of the
// fault's count cap when it fires.
func (in *Injector) Fire(point string) bool {
	if in == nil {
		return false
	}
	f, ok := in.faults[point]
	if !ok || f.rate == 0 {
		return false
	}
	if u := splitmix64(f.draws.Add(1) ^ in.seed); float64(u>>11)/(1<<53) >= f.rate {
		return false
	}
	// Probabilistic hit: spend one unit of the cap, if any remains.
	for {
		left := f.remaining.Load()
		if left < 0 {
			break // unlimited
		}
		if left == 0 {
			return false // cap exhausted, fault disarmed
		}
		if f.remaining.CompareAndSwap(left, left-1) {
			break
		}
	}
	if fn := in.onFire.Load(); fn != nil {
		(*fn)(point)
	}
	return true
}

// Delay returns the configured stall when the fault at point fires on
// this ask, zero otherwise. Callers sleep for the returned duration.
func (in *Injector) Delay(point string) time.Duration {
	if in == nil {
		return 0
	}
	f, ok := in.faults[point]
	if !ok || !in.Fire(point) {
		return 0
	}
	return f.delay
}

// splitmix64 is the SplitMix64 finalizer: a bijective mixer good enough
// to turn a counter into uniform draws, with no state beyond the
// counter itself (hence lock-free).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
