package chaos

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseEmptyIsOff(t *testing.T) {
	for _, spec := range []string{"", "   "} {
		in, err := Parse(spec)
		if err != nil || in != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", spec, in, err)
		}
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	bad := []string{
		"worker-panic",                  // no rate
		"worker-panic:2",                // rate out of range
		"worker-panic:-0.1",             // negative rate
		"worker-panic:nope",             // unparsable rate
		"worker-panic:0.5x0",            // zero count
		"worker-panic:0.5:2ms",          // duration on a non-delay point
		"slow-step:0.5",                 // delay point without duration
		"slow-step:0.5:-2ms",            // negative duration
		"slow-step:0.5:2ms:extra",       // trailing field
		"teleport:0.5",                  // unknown point
		"worker-panic:1,worker-panic:1", // duplicate point
		",",                             // nothing declared
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestParseFullGrammar(t *testing.T) {
	in, err := Parse(" worker-panic:1x1, slow-step:0.25:2ms ,queue-latency:0.5:500us,cache-write-error:0 ")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Points() {
		if !in.Active(p) {
			t.Errorf("point %s not active", p)
		}
	}
	if in.Active("teleport") {
		t.Error("unknown point reported active")
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	for _, p := range Points() {
		if in.Fire(p) || in.Delay(p) != 0 || in.Active(p) {
			t.Errorf("nil injector fired at %s", p)
		}
	}
	in.OnFire(func(string) {}) // must not panic
}

func TestRateOneAlwaysFiresRateZeroNever(t *testing.T) {
	in, err := Parse("worker-panic:1,cache-write-error:0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !in.Fire(WorkerPanic) {
			t.Fatal("rate-1 fault did not fire")
		}
		if in.Fire(CacheWriteError) {
			t.Fatal("rate-0 fault fired")
		}
	}
}

func TestCountCapDisarms(t *testing.T) {
	in, err := Parse("worker-panic:1x3")
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 50; i++ {
		if in.Fire(WorkerPanic) {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("x3 cap fired %d times", fired)
	}
}

func TestRateIsApproximatelyHonoured(t *testing.T) {
	in, err := Parse("worker-panic:0.2")
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if in.Fire(WorkerPanic) {
			fired++
		}
	}
	if got := float64(fired) / n; got < 0.15 || got > 0.25 {
		t.Errorf("rate 0.2 fired at %.3f over %d draws", got, n)
	}
}

func TestDelayReturnsConfiguredStall(t *testing.T) {
	in, err := Parse("slow-step:1:2ms,queue-latency:0:1ms")
	if err != nil {
		t.Fatal(err)
	}
	if d := in.Delay(SlowStep); d != 2*time.Millisecond {
		t.Errorf("Delay(slow-step) = %v", d)
	}
	if d := in.Delay(QueueLatency); d != 0 {
		t.Errorf("rate-0 Delay = %v, want 0", d)
	}
	if d := in.Delay(WorkerPanic); d != 0 {
		t.Errorf("Delay on a delay-free point = %v, want 0", d)
	}
}

func TestOnFireObserverSeesEveryFiring(t *testing.T) {
	in, err := Parse("worker-panic:1x5")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	counts := map[string]int{}
	in.OnFire(func(p string) { mu.Lock(); counts[p]++; mu.Unlock() })
	for i := 0; i < 20; i++ {
		in.Fire(WorkerPanic)
	}
	if counts[WorkerPanic] != 5 {
		t.Errorf("observer saw %d firings, want 5", counts[WorkerPanic])
	}
}

// TestConcurrentFire exercises the lock-free draw path under -race and
// verifies a shared count cap is never overspent.
func TestConcurrentFire(t *testing.T) {
	in, err := Parse("worker-panic:1x100,slow-step:0.5:1us")
	if err != nil {
		t.Fatal(err)
	}
	var fired sync.Map
	var total int64
	var mu sync.Mutex
	in.OnFire(func(p string) { fired.Store(p, true); mu.Lock(); total++; mu.Unlock() })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				in.Fire(WorkerPanic)
				in.Delay(SlowStep)
			}
		}()
	}
	wg.Wait()
	panics := 0
	for i := 0; i < 100; i++ {
		if in.Fire(WorkerPanic) {
			panics++
		}
	}
	if panics != 0 {
		t.Errorf("cap of 100 not exhausted after 1600 concurrent draws")
	}
}

func TestPointsSortedAndComplete(t *testing.T) {
	pts := Points()
	want := []string{CacheWriteError, QueueLatency, SlowStep, WorkerPanic}
	if strings.Join(pts, ",") != strings.Join(want, ",") {
		t.Errorf("Points() = %v, want %v", pts, want)
	}
}
