package plot

import (
	"math"
	"strings"
	"testing"
)

func sampleFigure() Figure {
	return Figure{
		Title:  "T_B vs k",
		XLabel: "k",
		YLabel: "T_B",
		LogX:   true,
		LogY:   true,
		Series: []Series{
			{Name: "measured", X: []float64{8, 16, 32, 64}, Y: []float64{100, 70, 50, 35}},
			{Name: "theory", X: []float64{8, 16, 32, 64}, Y: []float64{110, 78, 55, 39}},
		},
	}
}

func TestASCIIContainsStructure(t *testing.T) {
	t.Parallel()
	f := sampleFigure()
	out := f.ASCII(40, 10)
	if !strings.Contains(out, "T_B vs k") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "measured") || !strings.Contains(out, "theory") {
		t.Error("missing legend entries")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing series glyphs")
	}
	if !strings.Contains(out, "+----") {
		t.Error("missing axis frame")
	}
}

func TestASCIIEmptyFigure(t *testing.T) {
	t.Parallel()
	f := Figure{Title: "empty"}
	out := f.ASCII(30, 8)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty figure output: %q", out)
	}
}

func TestASCIIDropsInvalidLogPoints(t *testing.T) {
	t.Parallel()
	f := Figure{
		LogX: true,
		Series: []Series{
			{Name: "s", X: []float64{-5, 0, 10}, Y: []float64{1, 2, 3}},
		},
	}
	out := f.ASCII(30, 8)
	// Only one valid point; should still render without panicking.
	if !strings.Contains(out, "*") {
		t.Errorf("valid point not rendered: %q", out)
	}
}

func TestASCIIDropsNaNInf(t *testing.T) {
	t.Parallel()
	f := Figure{
		Series: []Series{
			{Name: "s", X: []float64{math.NaN(), math.Inf(1), 1, 2},
				Y: []float64{1, 2, 3, 4}},
		},
	}
	out := f.ASCII(30, 8)
	if strings.Contains(out, "(no data)") {
		t.Error("all points dropped despite two valid ones")
	}
}

func TestASCIIClampsTinySizes(t *testing.T) {
	t.Parallel()
	f := sampleFigure()
	out := f.ASCII(1, 1)
	if len(out) == 0 {
		t.Error("clamped render empty")
	}
}

func TestASCIIMismatchedSeriesLengths(t *testing.T) {
	t.Parallel()
	f := Figure{
		Series: []Series{{Name: "s", X: []float64{1, 2, 3}, Y: []float64{5}}},
	}
	out := f.ASCII(20, 6)
	if strings.Contains(out, "(no data)") {
		t.Error("should render the one aligned point")
	}
}

func TestASCIISinglePoint(t *testing.T) {
	t.Parallel()
	f := Figure{Series: []Series{{Name: "p", X: []float64{5}, Y: []float64{7}}}}
	out := f.ASCII(20, 6)
	if !strings.Contains(out, "*") {
		t.Error("single point not rendered")
	}
}

func TestSVGWellFormed(t *testing.T) {
	t.Parallel()
	f := sampleFigure()
	out := f.SVG(400, 300)
	for _, want := range []string{
		"<svg", "</svg>", "<circle", "<polyline", "T_B vs k", "measured",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Balanced: one opening svg tag, one closing.
	if strings.Count(out, "<svg") != 1 || strings.Count(out, "</svg>") != 1 {
		t.Error("unbalanced svg tags")
	}
}

func TestSVGEscapesText(t *testing.T) {
	t.Parallel()
	f := Figure{
		Title:  `a<b & "c"`,
		Series: []Series{{Name: "x>y", X: []float64{1}, Y: []float64{1}}},
	}
	out := f.SVG(200, 150)
	if strings.Contains(out, `a<b`) {
		t.Error("title not escaped")
	}
	if !strings.Contains(out, "a&lt;b &amp; &quot;c&quot;") {
		t.Error("expected escaped title")
	}
	if !strings.Contains(out, "x&gt;y") {
		t.Error("series name not escaped")
	}
}

func TestSVGEmptyFigure(t *testing.T) {
	t.Parallel()
	f := Figure{Title: "nothing"}
	out := f.SVG(200, 150)
	if !strings.Contains(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Error("empty SVG not well-formed")
	}
	if strings.Contains(out, "<circle") {
		t.Error("circles present with no data")
	}
}

func TestSVGClampsSize(t *testing.T) {
	t.Parallel()
	f := sampleFigure()
	out := f.SVG(1, 1)
	if !strings.Contains(out, `width="100"`) {
		t.Error("width not clamped to minimum")
	}
}

func TestGlyphCycling(t *testing.T) {
	t.Parallel()
	// More series than glyphs: rendering must not panic and reuses glyphs.
	var f Figure
	for i := 0; i < 12; i++ {
		f.Series = append(f.Series, Series{
			Name: "s", X: []float64{float64(i)}, Y: []float64{float64(i)},
		})
	}
	if out := f.ASCII(30, 8); len(out) == 0 {
		t.Error("empty output")
	}
	if out := f.SVG(300, 200); len(out) == 0 {
		t.Error("empty SVG")
	}
}
