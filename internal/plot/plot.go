// Package plot renders the experiment suite's figures without external
// dependencies: an ASCII renderer for terminal output and an SVG renderer
// for files. Both consume the same Figure description, so every figure in
// EXPERIMENTS.md can be regenerated in either form.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named line/point set of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// Figure describes a 2-D scatter/line chart.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	// LogX and LogY request log10 axes (points with non-positive values on
	// a log axis are dropped).
	LogX, LogY bool
	Series     []Series
}

// seriesGlyphs assigns stable glyphs to series in order.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

type xyPoint struct {
	x, y float64
	s    int // series index
}

// transform applies axis transforms and drops unusable points.
func (f *Figure) transform() []xyPoint {
	var pts []xyPoint
	for si, s := range f.Series {
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			if f.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			if f.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			pts = append(pts, xyPoint{x, y, si})
		}
	}
	return pts
}

// ASCII renders the figure as a text chart of the given size (columns x
// rows for the plotting area; axes and legend add a few lines). Sizes are
// clamped to sensible minimums.
func (f *Figure) ASCII(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	pts := f.transform()
	var b strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&b, "%s\n", f.Title)
	}
	if len(pts) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	minX, maxX := pts[0].x, pts[0].x
	minY, maxY := pts[0].y, pts[0].y
	for _, p := range pts {
		minX, maxX = math.Min(minX, p.x), math.Max(maxX, p.x)
		minY, maxY = math.Min(minY, p.y), math.Max(maxY, p.y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	cells := make([][]byte, height)
	for i := range cells {
		cells[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range pts {
		cx := int(math.Round((p.x - minX) / (maxX - minX) * float64(width-1)))
		cy := int(math.Round((p.y - minY) / (maxY - minY) * float64(height-1)))
		row := height - 1 - cy
		glyph := seriesGlyphs[p.s%len(seriesGlyphs)]
		cells[row][cx] = glyph
	}
	ylo, yhi := minY, maxY
	xlo, xhi := minX, maxX
	fmtAxis := func(v float64, log bool) string {
		if log {
			return fmt.Sprintf("%.3g", math.Pow(10, v))
		}
		return fmt.Sprintf("%.3g", v)
	}
	fmt.Fprintf(&b, "%s\n", f.YLabel)
	fmt.Fprintf(&b, "%8s +%s\n", fmtAxis(yhi, f.LogY), strings.Repeat("-", width))
	for _, row := range cells {
		fmt.Fprintf(&b, "%8s |%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%8s +%s\n", fmtAxis(ylo, f.LogY), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  %-*s%s\n", "", width-8, fmtAxis(xlo, f.LogX), fmtAxis(xhi, f.LogX))
	if f.XLabel != "" {
		fmt.Fprintf(&b, "%8s  %s\n", "", f.XLabel)
	}
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c %s\n", seriesGlyphs[si%len(seriesGlyphs)], s.Name)
	}
	return b.String()
}

// svgPalette provides stroke colors for series.
var svgPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#e377c2", "#7f7f7f",
}

// SVG renders the figure as a standalone SVG document of the given pixel
// size.
func (f *Figure) SVG(width, height int) string {
	if width < 100 {
		width = 100
	}
	if height < 80 {
		height = 80
	}
	const margin = 50
	plotW := float64(width - 2*margin)
	plotH := float64(height - 2*margin)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if f.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" text-anchor="middle" font-family="sans-serif">%s</text>`+"\n",
			width/2, escape(f.Title))
	}

	pts := f.transform()
	if len(pts) > 0 {
		minX, maxX := pts[0].x, pts[0].x
		minY, maxY := pts[0].y, pts[0].y
		for _, p := range pts {
			minX, maxX = math.Min(minX, p.x), math.Max(maxX, p.x)
			minY, maxY = math.Min(minY, p.y), math.Max(maxY, p.y)
		}
		if maxX == minX {
			maxX = minX + 1
		}
		if maxY == minY {
			maxY = minY + 1
		}
		toPx := func(p xyPoint) (float64, float64) {
			x := margin + (p.x-minX)/(maxX-minX)*plotW
			y := float64(height) - margin - (p.y-minY)/(maxY-minY)*plotH
			return x, y
		}
		// Axes.
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="black"/>`+"\n",
			margin, margin, plotW, plotH)
		axisVal := func(v float64, log bool) string {
			if log {
				return fmt.Sprintf("%.3g", math.Pow(10, v))
			}
			return fmt.Sprintf("%.3g", v)
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" font-family="sans-serif">%s</text>`+"\n",
			margin, height-margin+14, axisVal(minX, f.LogX))
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" text-anchor="end" font-family="sans-serif">%s</text>`+"\n",
			width-margin, height-margin+14, axisVal(maxX, f.LogX))
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" text-anchor="end" font-family="sans-serif">%s</text>`+"\n",
			margin-4, height-margin, axisVal(minY, f.LogY))
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" text-anchor="end" font-family="sans-serif">%s</text>`+"\n",
			margin-4, margin+10, axisVal(maxY, f.LogY))
		if f.XLabel != "" {
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" text-anchor="middle" font-family="sans-serif">%s</text>`+"\n",
				width/2, height-10, escape(f.XLabel))
		}
		if f.YLabel != "" {
			fmt.Fprintf(&b, `<text x="14" y="%d" font-size="11" text-anchor="middle" transform="rotate(-90 14 %d)" font-family="sans-serif">%s</text>`+"\n",
				height/2, height/2, escape(f.YLabel))
		}

		// Series polylines + points, sorted by x within each series.
		bySeries := make(map[int][]xyPoint)
		for _, p := range pts {
			bySeries[p.s] = append(bySeries[p.s], p)
		}
		for si := range f.Series {
			sp := bySeries[si]
			if len(sp) == 0 {
				continue
			}
			sort.Slice(sp, func(i, j int) bool { return sp[i].x < sp[j].x })
			color := svgPalette[si%len(svgPalette)]
			var poly strings.Builder
			for _, p := range sp {
				x, y := toPx(p)
				fmt.Fprintf(&poly, "%.1f,%.1f ", x, y)
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", x, y, color)
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
				strings.TrimSpace(poly.String()), color)
			// Legend entry.
			ly := margin + 16*si
			fmt.Fprintf(&b, `<rect x="%.0f" y="%d" width="10" height="10" fill="%s"/>`+"\n",
				float64(width-margin)+6, ly, color)
			fmt.Fprintf(&b, `<text x="%.0f" y="%d" font-size="9" font-family="sans-serif">%s</text>`+"\n",
				float64(width-margin)+18, ly+9, escape(f.Series[si].Name))
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
