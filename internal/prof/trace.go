package prof

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Trace collects spans — named, timed intervals attributed to a logical
// thread — and serialises them as Chrome trace-event JSON, the format
// Perfetto and chrome://tracing load directly. One Trace spans one logical
// operation (an HTTP request, a job, a CLI run); spans within it share the
// trace's epoch so their timestamps nest correctly in the viewer.
//
// All methods are safe on a nil receiver (no-ops returning zero values), so
// call sites thread a possibly-nil *Trace unconditionally, mirroring
// StepProfile. A non-nil Trace is safe for concurrent use.
type Trace struct {
	mu      sync.Mutex
	epoch   time.Time
	spans   []Span
	threads map[int64]string
}

// Span is one completed interval in a trace.
type Span struct {
	// Name is the span's display name ("execute", "rep 3", ...).
	Name string
	// Cat is the span's category ("job", "rep", "http", ...).
	Cat string
	// TID is the logical thread the span belongs to; spans with equal TID
	// render on one row in the viewer.
	TID int64
	// Start is the span's offset from the trace epoch.
	Start time.Duration
	// Dur is the span's duration.
	Dur time.Duration
	// Args holds optional key-value annotations shown in the viewer's
	// detail pane.
	Args map[string]string
}

// NewTrace returns an empty trace whose epoch is the current instant.
func NewTrace() *Trace {
	return &Trace{epoch: time.Now(), threads: make(map[int64]string)}
}

// Epoch returns the trace's zero instant (zero time on nil).
func (t *Trace) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// Add records a completed span from its absolute start time and duration.
// No-op on a nil receiver.
func (t *Trace) Add(name, cat string, tid int64, start time.Time, d time.Duration, args map[string]string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{
		Name:  name,
		Cat:   cat,
		TID:   tid,
		Start: start.Sub(t.epoch),
		Dur:   d,
		Args:  args,
	})
	t.mu.Unlock()
}

// NameThread assigns a display name to a logical thread id, emitted as
// thread_name metadata so the viewer labels the row. No-op on nil.
func (t *Trace) NameThread(tid int64, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threads[tid] = name
	t.mu.Unlock()
}

// Len returns the number of recorded spans (0 on nil).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a snapshot copy of the recorded spans (nil on nil).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// traceEvent is one entry of the Chrome trace-event JSON array. Complete
// spans use ph "X" with microsecond ts/dur; thread names use the "M"
// metadata form. See the Trace Event Format spec (Chromium project).
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	PID  int64             `json:"pid"`
	TID  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// traceFile is the object form of the format: Perfetto and chrome://tracing
// accept {"traceEvents": [...]}.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// tracePID is the fixed process id stamped on every event: one Trace always
// describes one logical process.
const tracePID = 1

// WriteChromeTrace serialises the trace as Chrome trace-event JSON. Thread
// name metadata events precede the span events, spans appear in recording
// order, and timestamps are microseconds from the trace epoch. Writing a
// nil or empty trace emits a valid file with an empty event array.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	f := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	if t != nil {
		t.mu.Lock()
		tids := make([]int64, 0, len(t.threads))
		for tid := range t.threads {
			tids = append(tids, tid)
		}
		// Deterministic metadata order: ascending tid.
		for i := 1; i < len(tids); i++ {
			for j := i; j > 0 && tids[j-1] > tids[j]; j-- {
				tids[j-1], tids[j] = tids[j], tids[j-1]
			}
		}
		for _, tid := range tids {
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: "thread_name",
				Ph:   "M",
				PID:  tracePID,
				TID:  tid,
				Args: map[string]string{"name": t.threads[tid]},
			})
		}
		for _, s := range t.spans {
			dur := float64(s.Dur) / float64(time.Microsecond)
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: s.Name,
				Cat:  s.Cat,
				Ph:   "X",
				TS:   float64(s.Start) / float64(time.Microsecond),
				Dur:  &dur,
				PID:  tracePID,
				TID:  s.TID,
				Args: s.Args,
			})
		}
		t.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// ValidateChromeTrace parses data as Chrome trace-event JSON and checks the
// structural invariants the exporters guarantee: a top-level traceEvents
// array whose entries each carry a name, a known phase ("X" or "M"), and —
// for complete spans — non-negative ts and dur. It returns the number of
// span ("X") events. Consumers (CI, mobibench self-checks, schema tests)
// share this one definition of "parses as a trace".
func ValidateChromeTrace(data []byte) (spans int, err error) {
	var f struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, err
	}
	if f.TraceEvents == nil {
		return 0, errMissingEvents
	}
	for i, e := range f.TraceEvents {
		if e.Name == "" {
			return 0, validationError{i, "missing name"}
		}
		switch e.Ph {
		case "X":
			if e.TS == nil || *e.TS < 0 {
				return 0, validationError{i, "X event without non-negative ts"}
			}
			if e.Dur == nil || *e.Dur < 0 {
				return 0, validationError{i, "X event without non-negative dur"}
			}
			spans++
		case "M":
			// Metadata events carry no timing.
		default:
			return 0, validationError{i, "unknown ph " + e.Ph}
		}
	}
	return spans, nil
}

// errMissingEvents reports a document without a traceEvents array.
var errMissingEvents = validationError{-1, "no traceEvents array"}

// validationError locates a malformed trace event by index (-1 for
// document-level problems).
type validationError struct {
	index int
	msg   string
}

// Error implements the error interface.
func (e validationError) Error() string {
	if e.index < 0 {
		return "chrome trace: " + e.msg
	}
	return "chrome trace: event " + itoa(e.index) + ": " + e.msg
}

// itoa formats a small non-negative int without pulling in fmt for the
// error path.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
