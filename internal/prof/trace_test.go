package prof

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Add("x", "cat", 0, time.Now(), time.Millisecond, nil)
	tr.NameThread(0, "main")
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil trace recorded something")
	}
	if !tr.Epoch().IsZero() {
		t.Fatal("nil trace has a nonzero epoch")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace on nil trace: %v", err)
	}
	spans, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("nil trace does not validate: %v", err)
	}
	if spans != 0 {
		t.Fatalf("nil trace reports %d spans, want 0", spans)
	}
}

// TestChromeTraceRoundTrip pins the export schema: spans and thread names go
// in, a document with displayTimeUnit "ms", "M" metadata events and "X"
// complete events with microsecond ts/dur comes out, and the shared
// validator counts exactly the spans that were recorded.
func TestChromeTraceRoundTrip(t *testing.T) {
	tr := NewTrace()
	tr.NameThread(0, "job")
	tr.NameThread(2, "rep 1")
	epoch := tr.Epoch()
	tr.Add("submit", "job", 0, epoch, 500*time.Microsecond, map[string]string{"hash": "abc"})
	tr.Add("queue_wait", "queue", 2, epoch.Add(time.Millisecond), 250*time.Microsecond, nil)
	tr.Add("run broadcast", "rep", 2, epoch.Add(2*time.Millisecond), 3*time.Millisecond, map[string]string{"phase_move_ms": "1.250"})
	if tr.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", tr.Len())
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	spans, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace does not validate: %v", err)
	}
	if spans != 3 {
		t.Fatalf("validator counted %d spans, want 3", spans)
	}

	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			PID  int64             `json:"pid"`
			TID  int64             `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want \"ms\"", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("%d events, want 5 (2 metadata + 3 spans)", len(doc.TraceEvents))
	}
	// Metadata first, in ascending tid order.
	for i, wantTID := range []int64{0, 2} {
		e := doc.TraceEvents[i]
		if e.Ph != "M" || e.Name != "thread_name" || e.TID != wantTID {
			t.Fatalf("event %d = %+v, want thread_name metadata for tid %d", i, e, wantTID)
		}
	}
	if doc.TraceEvents[1].Args["name"] != "rep 1" {
		t.Fatalf("tid 2 thread name = %q, want \"rep 1\"", doc.TraceEvents[1].Args["name"])
	}
	run := doc.TraceEvents[4]
	if run.Name != "run broadcast" || run.Cat != "rep" || run.Ph != "X" || run.PID != 1 {
		t.Fatalf("span event = %+v", run)
	}
	if run.TS != 2000 || run.Dur != 3000 {
		t.Fatalf("ts/dur = %v/%v µs, want 2000/3000", run.TS, run.Dur)
	}
	if run.Args["phase_move_ms"] != "1.250" {
		t.Fatalf("span args = %v", run.Args)
	}
}

func TestValidateChromeTraceRejections(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"not json", `{`, "unexpected end"},
		{"no traceEvents", `{"displayTimeUnit":"ms"}`, "no traceEvents array"},
		{"missing name", `{"traceEvents":[{"ph":"X","ts":1,"dur":1}]}`, "missing name"},
		{"negative ts", `{"traceEvents":[{"name":"a","ph":"X","ts":-1,"dur":1}]}`, "non-negative ts"},
		{"missing dur", `{"traceEvents":[{"name":"a","ph":"X","ts":1}]}`, "non-negative dur"},
		{"unknown ph", `{"traceEvents":[{"name":"a","ph":"B","ts":1}]}`, "unknown ph"},
	}
	for _, tc := range cases {
		if _, err := ValidateChromeTrace([]byte(tc.doc)); err == nil {
			t.Errorf("%s: validated, want error containing %q", tc.name, tc.want)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if n, err := ValidateChromeTrace([]byte(`{"traceEvents":[]}`)); err != nil || n != 0 {
		t.Fatalf("empty traceEvents: n=%d err=%v, want 0 spans and no error", n, err)
	}
}
