// Package prof provides the step-phase profiler and span tracer behind the
// repository's observability surface. It answers "where does a step's time
// actually go?" with a fixed phase vocabulary — move, index, label, spread,
// observe — accumulated per replicate by a StepProfile, and "where did this
// request's time go?" with a Trace of spans exportable as Chrome trace-event
// JSON (loadable in Perfetto or chrome://tracing).
//
// The profiler is zero-overhead when disabled: every method is safe on a nil
// receiver and returns immediately, so an engine instrumented with
//
//	p.Mark()
//	pop.Step()
//	p.Lap(prof.Move)
//
// compiles to a branch-and-skip when no profile is attached. An enabled
// StepProfile performs exactly one monotonic clock read per Lap and
// accumulates into a fixed-size array — no maps, no allocation — so the
// engines' zero-alloc steady-state invariants hold with profiling on as
// well as off.
package prof

import "time"

// Phase identifies one slice of an engine step in the fixed vocabulary
// shared by every engine. Not every engine exercises every phase (pure
// coverage runs never index or label), but no engine invents phases outside
// this set, which is what keeps the telemetry label space bounded.
type Phase uint8

// The phase vocabulary, in canonical order.
const (
	// Move is motion-model stepping: advancing agent positions one tick.
	Move Phase = iota
	// Index is spatial-index construction: the CSR bucket build (counting
	// sort) that precedes component labelling.
	Index
	// Label is connectivity resolution: union-find over candidate pairs
	// plus the dense deterministic label pass.
	Label
	// Spread is information propagation: flooding rumors or marks through
	// the labelled components (or captures, visits, meetings — whatever
	// the engine disseminates).
	Spread
	// Observe is measurement: per-step observable extraction, curve and
	// series recording.
	Observe
	// NumPhases is the size of the vocabulary; valid phases are < NumPhases.
	NumPhases
)

// phaseNames is indexed by Phase; the strings are the wire vocabulary used
// in JSON breakdowns and telemetry labels.
var phaseNames = [NumPhases]string{"move", "index", "label", "spread", "observe"}

// String returns the phase's wire name ("move", "index", ...).
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "invalid"
}

// PhaseNames returns the full phase vocabulary in canonical order. The
// returned slice is freshly allocated.
func PhaseNames() []string {
	out := make([]string, NumPhases)
	copy(out, phaseNames[:])
	return out
}

// StepProfile accumulates per-phase wall-clock time across the steps of one
// replicate. The accumulator is a fixed-size array, so steady-state use
// allocates nothing; all methods are no-ops on a nil receiver, so engines
// thread a possibly-nil *StepProfile unconditionally.
//
// Usage inside a step loop: call Mark once at the top of the step, then Lap
// after each phase completes. Lap charges the time since the previous Mark
// or Lap to the given phase with a single clock read, so consecutive laps
// tile the step exactly. A StepProfile is not safe for concurrent use; each
// replicate owns its own.
type StepProfile struct {
	totals [NumPhases]time.Duration
	steps  int
	mark   time.Time
}

// Mark records the current instant as the start of the next phase. Call it
// at the top of each step (and after any work that should not be charged to
// a phase). No-op on a nil receiver.
func (p *StepProfile) Mark() {
	if p == nil {
		return
	}
	p.mark = time.Now()
}

// Lap charges the time elapsed since the last Mark or Lap to the given
// phase and re-marks, using one clock read. No-op on a nil receiver.
func (p *StepProfile) Lap(ph Phase) {
	if p == nil {
		return
	}
	now := time.Now()
	p.totals[ph] += now.Sub(p.mark)
	p.mark = now
}

// StepDone counts one completed step. No-op on a nil receiver.
func (p *StepProfile) StepDone() {
	if p == nil {
		return
	}
	p.steps++
}

// Reset clears all accumulated totals and the step count for reuse across
// replicates. No-op on a nil receiver.
func (p *StepProfile) Reset() {
	if p == nil {
		return
	}
	p.totals = [NumPhases]time.Duration{}
	p.steps = 0
	p.mark = time.Time{}
}

// Steps returns the number of completed steps counted so far (0 on nil).
func (p *StepProfile) Steps() int {
	if p == nil {
		return 0
	}
	return p.steps
}

// PhaseTotal returns the accumulated duration of one phase (0 on nil).
func (p *StepProfile) PhaseTotal(ph Phase) time.Duration {
	if p == nil || ph >= NumPhases {
		return 0
	}
	return p.totals[ph]
}

// Total returns the sum of all phase totals (0 on nil).
func (p *StepProfile) Total() time.Duration {
	if p == nil {
		return 0
	}
	var t time.Duration
	for _, d := range p.totals {
		t += d
	}
	return t
}

// Breakdown freezes the profile into its JSON-facing form. Phases with zero
// accumulated time are omitted (an engine that never indexes reports no
// index entry). Returns nil on a nil receiver or when nothing was recorded,
// so unprofiled runs marshal with no phases field at all.
func (p *StepProfile) Breakdown() *Breakdown {
	if p == nil {
		return nil
	}
	total := p.Total()
	if total <= 0 && p.steps == 0 {
		return nil
	}
	b := &Breakdown{
		Steps:     p.steps,
		Seconds:   make(map[string]float64, int(NumPhases)),
		Fractions: make(map[string]float64, int(NumPhases)),
	}
	for ph := Phase(0); ph < NumPhases; ph++ {
		d := p.totals[ph]
		if d <= 0 {
			continue
		}
		b.Seconds[phaseNames[ph]] = d.Seconds()
		if total > 0 {
			b.Fractions[phaseNames[ph]] = float64(d) / float64(total)
		}
	}
	return b
}

// Breakdown is the aggregated, serialisable view of one or more step
// profiles: per-phase wall-clock seconds and the fraction each phase
// contributes to the profiled total. Maps marshal with sorted keys, so the
// JSON form is deterministic for fixed values.
type Breakdown struct {
	// Steps is the number of profiled steps the breakdown covers.
	Steps int `json:"steps"`
	// Seconds maps phase name to accumulated wall-clock seconds. Only
	// phases with nonzero time appear.
	Seconds map[string]float64 `json:"seconds"`
	// Fractions maps phase name to its share of the profiled total, in
	// (0, 1]. Shares sum to 1 up to rounding.
	Fractions map[string]float64 `json:"fractions,omitempty"`
}

// TotalSeconds returns the sum of all per-phase seconds (0 on nil).
func (b *Breakdown) TotalSeconds() float64 {
	if b == nil {
		return 0
	}
	var t float64
	for _, s := range b.Seconds {
		t += s
	}
	return t
}

// MergeBreakdowns sums a set of breakdowns (nils skipped) into one,
// recomputing fractions over the merged total. Returns nil when every input
// is nil — so aggregating unprofiled replicates yields an absent field, not
// an empty object.
func MergeBreakdowns(bs ...*Breakdown) *Breakdown {
	var out *Breakdown
	for _, b := range bs {
		if b == nil {
			continue
		}
		if out == nil {
			out = &Breakdown{Seconds: make(map[string]float64, len(b.Seconds))}
		}
		out.Steps += b.Steps
		for name, s := range b.Seconds {
			out.Seconds[name] += s
		}
	}
	if out == nil {
		return nil
	}
	total := out.TotalSeconds()
	if total > 0 {
		out.Fractions = make(map[string]float64, len(out.Seconds))
		for name, s := range out.Seconds {
			out.Fractions[name] = s / total
		}
	}
	return out
}
