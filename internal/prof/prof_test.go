package prof

import (
	"math"
	"testing"
	"time"
)

// spin keeps the CPU busy long enough for the monotonic clock to tick, so
// laps accumulate strictly positive durations without sleeping.
func spin() {
	t0 := time.Now()
	for time.Since(t0) < 50*time.Microsecond {
	}
}

func TestNilProfileIsSafe(t *testing.T) {
	var p *StepProfile
	p.Mark()
	p.Lap(Move)
	p.StepDone()
	p.Reset()
	if p.Steps() != 0 || p.Total() != 0 || p.PhaseTotal(Spread) != 0 {
		t.Fatal("nil profile reported nonzero accounting")
	}
	if p.Breakdown() != nil {
		t.Fatal("nil profile produced a breakdown")
	}
}

func TestPhaseNames(t *testing.T) {
	names := PhaseNames()
	want := []string{"move", "index", "label", "spread", "observe"}
	if len(names) != len(want) || len(names) != int(NumPhases) {
		t.Fatalf("PhaseNames() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("PhaseNames()[%d] = %q, want %q", i, names[i], n)
		}
		if Phase(i).String() != n {
			t.Fatalf("Phase(%d).String() = %q, want %q", i, Phase(i).String(), n)
		}
	}
}

// TestLapsTileTheStep pins the accounting model: consecutive laps from one
// Mark partition the elapsed time, so the per-phase totals sum to the
// profile total and every lapped phase accumulates something positive.
func TestLapsTileTheStep(t *testing.T) {
	p := new(StepProfile)
	for step := 0; step < 3; step++ {
		p.Mark()
		spin()
		p.Lap(Move)
		spin()
		p.Lap(Spread)
		spin()
		p.Lap(Observe)
		p.StepDone()
	}
	if p.Steps() != 3 {
		t.Fatalf("Steps() = %d, want 3", p.Steps())
	}
	for _, ph := range []Phase{Move, Spread, Observe} {
		if p.PhaseTotal(ph) <= 0 {
			t.Errorf("phase %s accumulated nothing", ph)
		}
	}
	for _, ph := range []Phase{Index, Label} {
		if p.PhaseTotal(ph) != 0 {
			t.Errorf("unlapped phase %s accumulated %v", ph, p.PhaseTotal(ph))
		}
	}
	sum := p.PhaseTotal(Move) + p.PhaseTotal(Spread) + p.PhaseTotal(Observe)
	if sum != p.Total() {
		t.Fatalf("phase sum %v != Total() %v", sum, p.Total())
	}

	p.Reset()
	if p.Steps() != 0 || p.Total() != 0 {
		t.Fatal("Reset did not zero the profile")
	}
	if p.Breakdown() != nil {
		t.Fatal("reset profile still produced a breakdown")
	}
}

func TestBreakdownFractions(t *testing.T) {
	p := new(StepProfile)
	p.Mark()
	spin()
	p.Lap(Move)
	spin()
	p.Lap(Label)
	p.StepDone()

	b := p.Breakdown()
	if b == nil {
		t.Fatal("no breakdown from a recorded profile")
	}
	if b.Steps != 1 {
		t.Fatalf("Steps = %d, want 1", b.Steps)
	}
	if len(b.Seconds) != 2 {
		t.Fatalf("Seconds has %d phases, want 2 (zero phases must be omitted): %v", len(b.Seconds), b.Seconds)
	}
	var fsum float64
	for name, f := range b.Fractions {
		if f <= 0 || f >= 1 {
			t.Errorf("fraction %s = %v outside (0,1)", name, f)
		}
		fsum += f
	}
	if math.Abs(fsum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v, want 1", fsum)
	}
	if math.Abs(b.TotalSeconds()-p.Total().Seconds()) > 1e-12 {
		t.Fatalf("TotalSeconds %v != profile total %v", b.TotalSeconds(), p.Total().Seconds())
	}
}

func TestMergeBreakdowns(t *testing.T) {
	if MergeBreakdowns() != nil || MergeBreakdowns(nil, nil) != nil {
		t.Fatal("merging nothing must stay nil so unprofiled results keep absent fields")
	}
	a := &Breakdown{Steps: 2, Seconds: map[string]float64{"move": 1, "label": 3}}
	b := &Breakdown{Steps: 3, Seconds: map[string]float64{"move": 2, "spread": 2}}
	m := MergeBreakdowns(a, nil, b)
	if m == nil {
		t.Fatal("merge of real breakdowns returned nil")
	}
	if m.Steps != 5 {
		t.Fatalf("merged Steps = %d, want 5", m.Steps)
	}
	wantSec := map[string]float64{"move": 3, "label": 3, "spread": 2}
	for name, want := range wantSec {
		if got := m.Seconds[name]; math.Abs(got-want) > 1e-12 {
			t.Errorf("merged Seconds[%s] = %v, want %v", name, got, want)
		}
	}
	if got := m.Fractions["move"]; math.Abs(got-3.0/8.0) > 1e-12 {
		t.Errorf("merged Fractions[move] = %v, want %v", got, 3.0/8.0)
	}
}
