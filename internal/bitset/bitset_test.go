package bitset

import (
	"testing"
	"testing/quick"
)

func TestAddContainsLen(t *testing.T) {
	t.Parallel()
	s := New(128)
	if s.Len() != 0 {
		t.Fatalf("new set Len = %d", s.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127} {
		if !s.Add(i) {
			t.Errorf("Add(%d) reported not-new on first insert", i)
		}
		if s.Add(i) {
			t.Errorf("Add(%d) reported new on second insert", i)
		}
		if !s.Contains(i) {
			t.Errorf("Contains(%d) false after Add", i)
		}
	}
	if s.Len() != 6 {
		t.Errorf("Len = %d, want 6", s.Len())
	}
	if s.Contains(2) || s.Contains(126) {
		t.Error("Contains reports absent elements")
	}
}

func TestAddGrows(t *testing.T) {
	t.Parallel()
	var s Set // zero value usable
	if !s.Add(1000) {
		t.Fatal("Add(1000) on zero set failed")
	}
	if !s.Contains(1000) || s.Len() != 1 {
		t.Fatalf("zero-value set state wrong: contains=%v len=%d", s.Contains(1000), s.Len())
	}
	if s.Contains(999) || s.Contains(1001) {
		t.Error("neighboring elements spuriously present")
	}
}

func TestAddPanicsNegative(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	New(8).Add(-1)
}

func TestRemove(t *testing.T) {
	t.Parallel()
	s := New(64)
	s.Add(10)
	s.Add(20)
	if !s.Remove(10) {
		t.Error("Remove(10) reported absent")
	}
	if s.Remove(10) {
		t.Error("second Remove(10) reported present")
	}
	if s.Remove(-1) || s.Remove(1000) {
		t.Error("Remove out-of-range reported present")
	}
	if s.Len() != 1 || !s.Contains(20) {
		t.Errorf("set corrupted after removes: len=%d", s.Len())
	}
}

func TestContainsOutOfRange(t *testing.T) {
	t.Parallel()
	s := New(10)
	if s.Contains(-5) || s.Contains(1<<20) {
		t.Error("Contains true for out-of-range element")
	}
}

func TestUnionWith(t *testing.T) {
	t.Parallel()
	a := New(128)
	b := New(128)
	a.Add(1)
	a.Add(64)
	b.Add(64)
	b.Add(100)
	if !a.UnionWith(b) {
		t.Error("UnionWith reported no change")
	}
	for _, i := range []int{1, 64, 100} {
		if !a.Contains(i) {
			t.Errorf("after union, missing %d", i)
		}
	}
	if a.Len() != 3 {
		t.Errorf("Len = %d, want 3", a.Len())
	}
	if a.UnionWith(b) {
		t.Error("idempotent re-union reported change")
	}
	if a.UnionWith(nil) {
		t.Error("UnionWith(nil) reported change")
	}
}

func TestUnionWithGrows(t *testing.T) {
	t.Parallel()
	a := New(8)
	b := New(512)
	b.Add(400)
	if !a.UnionWith(b) {
		t.Fatal("union with larger set reported no change")
	}
	if !a.Contains(400) {
		t.Fatal("element 400 missing after growth union")
	}
}

func TestIsSupersetOf(t *testing.T) {
	t.Parallel()
	a := New(64)
	b := New(64)
	a.Add(1)
	a.Add(2)
	b.Add(1)
	if !a.IsSupersetOf(b) {
		t.Error("a should be superset of b")
	}
	if b.IsSupersetOf(a) {
		t.Error("b should not be superset of a")
	}
	if !a.IsSupersetOf(nil) {
		t.Error("any set is superset of nil")
	}
	big := New(256)
	big.Add(200)
	if a.IsSupersetOf(big) {
		t.Error("a is not superset of set with larger element")
	}
}

func TestEqual(t *testing.T) {
	t.Parallel()
	a := New(64)
	b := New(256) // different capacities, same elements
	a.Add(3)
	b.Add(3)
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("sets with equal elements but different capacity not Equal")
	}
	b.Add(200)
	if a.Equal(b) || b.Equal(a) {
		t.Error("unequal sets reported Equal")
	}
	empty := New(8)
	if !empty.Equal(nil) {
		t.Error("empty set should Equal nil")
	}
	if a.Equal(nil) {
		t.Error("non-empty set Equal nil")
	}
}

func TestCopyFrom(t *testing.T) {
	t.Parallel()
	src := New(256)
	src.Add(7)
	src.Add(200)
	dst := New(8)
	dst.Add(3)
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatal("CopyFrom did not produce an equal set")
	}
	if dst.Contains(3) {
		t.Error("stale element survived CopyFrom")
	}
	// Copying a smaller set into a larger one clears the tail words.
	small := New(8)
	small.Add(1)
	dst.CopyFrom(small)
	if !dst.Equal(small) || dst.Contains(200) {
		t.Error("tail not cleared when copying smaller set")
	}
	// CopyFrom(nil) empties the set.
	dst.CopyFrom(nil)
	if dst.Len() != 0 {
		t.Error("CopyFrom(nil) did not clear")
	}
}

func TestCloneIndependent(t *testing.T) {
	t.Parallel()
	a := New(64)
	a.Add(5)
	c := a.Clone()
	c.Add(6)
	if a.Contains(6) {
		t.Error("mutating clone affected original")
	}
	a.Add(7)
	if c.Contains(7) {
		t.Error("mutating original affected clone")
	}
}

func TestClear(t *testing.T) {
	t.Parallel()
	s := New(64)
	for i := 0; i < 64; i += 3 {
		s.Add(i)
	}
	s.Clear()
	if s.Len() != 0 {
		t.Errorf("Len after Clear = %d", s.Len())
	}
	for i := 0; i < 64; i++ {
		if s.Contains(i) {
			t.Fatalf("element %d present after Clear", i)
		}
	}
}

func TestForEachAscendingAndStop(t *testing.T) {
	t.Parallel()
	s := New(200)
	want := []int{0, 63, 64, 130, 199}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d elements, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: got %v, want %v", got, want)
		}
	}
	// Early stop after 2 visits.
	visits := 0
	s.ForEach(func(i int) bool {
		visits++
		return visits < 2
	})
	if visits != 2 {
		t.Errorf("early stop visited %d, want 2", visits)
	}
}

func TestElements(t *testing.T) {
	t.Parallel()
	s := New(100)
	s.Add(9)
	s.Add(1)
	s.Add(50)
	got := s.Elements()
	want := []int{1, 9, 50}
	if len(got) != len(want) {
		t.Fatalf("Elements = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elements = %v, want %v", got, want)
		}
	}
}

// Property: Len always equals the number of distinct inserted elements, and
// UnionWith is monotone (superset afterwards) and commutative in contents.
func TestQuickSetAlgebra(t *testing.T) {
	t.Parallel()
	f := func(xs, ys []uint16) bool {
		a1, b1 := New(0), New(0)
		distinct := make(map[int]bool)
		for _, x := range xs {
			a1.Add(int(x))
			distinct[int(x)] = true
		}
		if a1.Len() != len(distinct) {
			return false
		}
		for _, y := range ys {
			b1.Add(int(y))
		}
		u1 := a1.Clone()
		u1.UnionWith(b1)
		u2 := b1.Clone()
		u2.UnionWith(a1)
		if !u1.Equal(u2) {
			return false // commutativity of contents
		}
		if !u1.IsSupersetOf(a1) || !u1.IsSupersetOf(b1) {
			return false // monotone
		}
		// Union size bounded by sum, at least max.
		if u1.Len() > a1.Len()+b1.Len() || u1.Len() < a1.Len() || u1.Len() < b1.Len() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: popcount cache stays consistent with brute-force recount through
// interleaved adds and removes.
func TestQuickCountConsistency(t *testing.T) {
	t.Parallel()
	f := func(ops []int16) bool {
		s := New(0)
		ref := make(map[int]bool)
		for _, op := range ops {
			v := int(op)
			if v >= 0 {
				s.Add(v)
				ref[v] = true
			} else {
				s.Remove(-v)
				delete(ref, -v)
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for e := range ref {
			if !s.Contains(e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnionWith(b *testing.B) {
	x := New(4096)
	y := New(4096)
	for i := 0; i < 4096; i += 7 {
		y.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.UnionWith(y)
	}
}
