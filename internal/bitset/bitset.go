// Package bitset provides dense bit sets used for two purposes in the
// simulator: the rumor sets M_a(t) carried by each agent (which only ever
// grow — agents never forget rumors), and visited-node sets over grid nodes
// (for range, coverage and informed-area tracking).
//
// The representation is a plain []uint64; the zero value of Set is an empty
// set that can be grown with Add. Fixed-capacity sets created with New never
// reallocate, which the hot loops rely on.
package bitset

import "math/bits"

const wordBits = 64

// Set is a growable dense bit set over non-negative integer elements.
type Set struct {
	words []uint64
	count int // cached popcount, maintained incrementally
}

// New returns a set with capacity for elements [0, n). The set starts empty.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the number of elements currently in the set.
func (s *Set) Len() int { return s.count }

// Capacity returns the number of elements the set can hold without growing.
func (s *Set) Capacity() int { return len(s.words) * wordBits }

// grow ensures the set can hold element i.
func (s *Set) grow(i int) {
	need := i/wordBits + 1
	if need <= len(s.words) {
		return
	}
	w := make([]uint64, need)
	copy(w, s.words)
	s.words = w
}

// Add inserts i into the set and reports whether it was newly added.
// It panics on negative i.
func (s *Set) Add(i int) bool {
	if i < 0 {
		panic("bitset: negative element")
	}
	s.grow(i)
	w, b := i/wordBits, uint(i%wordBits)
	mask := uint64(1) << b
	if s.words[w]&mask != 0 {
		return false
	}
	s.words[w] |= mask
	s.count++
	return true
}

// Remove deletes i from the set and reports whether it was present.
func (s *Set) Remove(i int) bool {
	if i < 0 || i >= s.Capacity() {
		return false
	}
	w, b := i/wordBits, uint(i%wordBits)
	mask := uint64(1) << b
	if s.words[w]&mask == 0 {
		return false
	}
	s.words[w] &^= mask
	s.count--
	return true
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.Capacity() {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// UnionWith adds every element of other to s (s |= other) and reports
// whether s changed. This is the rumor-exchange primitive: within a
// connected component every agent's set becomes the union of all members'.
func (s *Set) UnionWith(other *Set) bool {
	if other == nil {
		return false
	}
	if len(other.words) > len(s.words) {
		s.grow(len(other.words)*wordBits - 1)
	}
	changed := false
	for i, w := range other.words {
		old := s.words[i]
		merged := old | w
		if merged != old {
			s.count += bits.OnesCount64(merged) - bits.OnesCount64(old)
			s.words[i] = merged
			changed = true
		}
	}
	return changed
}

// IsSupersetOf reports whether s contains every element of other.
func (s *Set) IsSupersetOf(other *Set) bool {
	if other == nil {
		return true
	}
	for i, w := range other.words {
		var mine uint64
		if i < len(s.words) {
			mine = s.words[i]
		}
		if w&^mine != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and other contain exactly the same elements.
func (s *Set) Equal(other *Set) bool {
	if other == nil {
		return s.count == 0
	}
	if s.count != other.count {
		return false
	}
	long, short := s.words, other.words
	if len(long) < len(short) {
		long, short = short, long
	}
	for i := range short {
		if long[i] != short[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w, count: s.count}
}

// CopyFrom makes s an exact copy of other, growing s as needed. It is the
// bulk primitive gossip uses to install a component's merged rumor set into
// every member.
func (s *Set) CopyFrom(other *Set) {
	if other == nil {
		s.Clear()
		return
	}
	if len(other.words) > len(s.words) {
		s.words = make([]uint64, len(other.words))
	}
	n := copy(s.words, other.words)
	for i := n; i < len(s.words); i++ {
		s.words[i] = 0
	}
	s.count = other.count
}

// Clear removes all elements, retaining capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.count = 0
}

// Words exposes the set's backing bit words for read-only bulk scans: word
// w holds elements [64w, 64w+64), lowest bit first. The slice aliases the
// set's storage and may be shorter than Capacity/64 suggests if the set
// never grew; callers must not mutate it — writes would desynchronise the
// cached element count.
func (s *Set) Words() []uint64 { return s.words }

// ForEach calls fn for every element in ascending order. Iteration stops if
// fn returns false.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Elements returns all elements in ascending order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.count)
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}
