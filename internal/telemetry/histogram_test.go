package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexBounds(t *testing.T) {
	t.Parallel()
	// Every representable value maps to a bucket whose bounds contain it,
	// and indices are monotone in the value. Probe around every octave
	// boundary plus the linear region.
	var probes []int64
	for v := int64(0); v < 64; v++ {
		probes = append(probes, v)
	}
	for e := uint(3); e < 62; e++ {
		base := int64(1) << e
		probes = append(probes, base-1, base, base+1)
	}
	prevIdx := -1
	prevVal := int64(-1)
	for _, v := range probes {
		i := bucketIndex(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		lo, hi := bucketBounds(i)
		if v < lo || v >= hi {
			t.Fatalf("value %d outside its bucket %d bounds [%d,%d)", v, i, lo, hi)
		}
		if v > prevVal && i < prevIdx {
			t.Fatalf("bucket index not monotone: value %d bucket %d after value %d bucket %d", v, i, prevVal, prevIdx)
		}
		prevVal, prevIdx = v, i
	}
}

// TestQuantileAccuracy pins the kernel's accuracy contract: against an
// exact sorted-sample reference, every extracted quantile is within the
// log-linear layout's 12.5% relative-error bound. The sample deliberately
// spans the linear region, many octaves and exact bucket boundaries.
func TestQuantileAccuracy(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	var vals []int64
	add := func(v int64) {
		vals = append(vals, v)
		h.Record(time.Duration(v))
	}
	// Log-uniform spread from 1 ns to ~17 s, crossing every octave.
	for i := 0; i < 20000; i++ {
		e := rng.Float64() * 34
		add(int64(math.Pow(2, e)))
	}
	// Exact powers of two sit on bucket boundaries.
	for e := uint(0); e <= 30; e++ {
		add(int64(1) << e)
	}
	// Tiny values exercise the exact linear buckets.
	for v := int64(0); v < 8; v++ {
		add(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })

	exact := func(q float64) int64 {
		rank := int(math.Ceil(q * float64(len(vals))))
		if rank < 1 {
			rank = 1
		}
		return vals[rank-1]
	}
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
		got := float64(h.Quantile(q))
		want := float64(exact(q))
		if diff := math.Abs(got - want); diff > want*0.125+1 {
			t.Errorf("q=%g: histogram %v, exact %v (diff %.0f ns exceeds 12.5%%)", q, got, want, diff)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	t.Parallel()
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	h.Record(5 * time.Millisecond)
	if h.Quantile(math.NaN()) != 0 {
		t.Error("NaN quantile did not clamp to 0")
	}
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		got := h.Quantile(q)
		lo, hi := bucketBounds(bucketIndex(int64(5 * time.Millisecond)))
		if int64(got) < lo || int64(got) > hi {
			t.Errorf("q=%g: %v outside single observation's bucket [%d,%d]", q, got, lo, hi)
		}
	}
	if h.Count() != 1 || h.Sum() != 5*time.Millisecond {
		t.Errorf("count %d sum %v", h.Count(), h.Sum())
	}
	h.Record(-time.Second) // negative clamps to zero, never panics
	if h.Count() != 2 {
		t.Errorf("negative record lost: count %d", h.Count())
	}
}

// TestHistogramConcurrentRecord drives concurrent writers against
// concurrent readers; under -race this doubles as the data-race gate for
// the whole kernel, and the final count checks that no increment was lost.
func TestHistogramConcurrentRecord(t *testing.T) {
	t.Parallel()
	const writers, perWriter = 8, 5000
	var h Histogram
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader: quantiles and counts mid-flight
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Quantile(0.99)
				h.Count()
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				h.Record(time.Duration(w*1000+i) * time.Microsecond)
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := h.Count(); got != writers*perWriter {
		t.Errorf("count %d after %d records", got, writers*perWriter)
	}
}

// TestHistogramRecordZeroAlloc pins the allocation contract: Record (and
// Since, and Quantile) allocate nothing in steady state, so request-path
// instrumentation cannot create GC pressure.
func TestHistogramRecordZeroAlloc(t *testing.T) {
	var h Histogram
	d := 3 * time.Millisecond
	if allocs := testing.AllocsPerRun(1000, func() { h.Record(d) }); allocs != 0 {
		t.Errorf("Record allocates %v per call", allocs)
	}
	t0 := time.Now()
	if allocs := testing.AllocsPerRun(1000, func() { h.Since(t0) }); allocs != 0 {
		t.Errorf("Since allocates %v per call", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { h.Quantile(0.99) }); allocs != 0 {
		t.Errorf("Quantile allocates %v per call", allocs)
	}
}

func TestQuantileFromCumulative(t *testing.T) {
	t.Parallel()
	bounds := []float64{0.001, 0.01, 0.1}
	cum := []uint64{10, 90, 100, 101} // one observation beyond the last bound
	if got := QuantileFromCumulative(bounds, cum, 0.5); got <= 0.001 || got > 0.01 {
		t.Errorf("p50 = %g, want inside (0.001, 0.01]", got)
	}
	if got := QuantileFromCumulative(bounds, cum, 1); got != 0.1 {
		t.Errorf("p100 = %g, want last finite bound 0.1", got)
	}
	if got := QuantileFromCumulative(bounds, cum[:3], 0.5); got != 0 {
		t.Errorf("malformed encoding returned %g, want 0", got)
	}
	if got := QuantileFromCumulative(bounds, []uint64{0, 0, 0, 0}, 0.5); got != 0 {
		t.Errorf("empty encoding returned %g, want 0", got)
	}
}

// TestExpositionRoundTrip records a known distribution, renders it through
// a registry, re-parses the body, and checks the recovered quantiles agree
// with the live histogram at scrape (octave) resolution.
func TestExpositionRoundTrip(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	h := r.Histogram("stage_seconds", "Stage latency.", Label{"stage", "execute"})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		h.Record(time.Duration(1 + rng.Int63n(int64(200*time.Millisecond))))
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	parsed := ParseHistograms(sb.String())
	s, ok := parsed[`stage_seconds{stage="execute"}`]
	if !ok {
		t.Fatalf("series not recovered; parsed keys: %v", keys(parsed))
	}
	if s.Count() != 5000 {
		t.Fatalf("recovered count %d", s.Count())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		live := h.Quantile(q).Seconds()
		scraped := s.Quantile(q)
		// Scrape resolution is one octave: the recovered quantile must be
		// within a factor of two of the live one.
		if scraped < live/2 || scraped > live*2 {
			t.Errorf("q=%g: scraped %g vs live %g beyond octave resolution", q, scraped, live)
		}
	}
	diff, ok := s.Sub(s)
	if !ok || diff.Count() != 0 {
		t.Errorf("self-subtraction: ok=%v count=%d", ok, diff.Count())
	}
}

func keys(m map[string]ScrapedHistogram) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
