// Package telemetry is a dependency-free metrics kernel for the service
// layer: atomic counters and gauges, log-bucketed latency histograms with
// quantile extraction, and a registry that renders everything in the
// Prometheus text exposition format (version 0.0.4). The repo takes no
// dependencies, so the kernel is hand-rolled; it deliberately implements
// only the subset the simulation service needs — monotone counters,
// instantaneous gauges (stored or computed at scrape), and label-stamped
// histogram families — with the same lazily-materialised-series convention
// as the standard Prometheus clients: a labelled series appears in the
// exposition only after its first observation, so migrating a hand-written
// /metrics body onto the registry is byte-compatible.
//
// Everything here is safe for concurrent use, and the write paths
// (Counter.Add, Gauge.Set, Histogram.Record) are lock- and
// allocation-free: they may sit on request paths, though never inside
// per-step simulation loops (the obs pipeline owns those).
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous integer value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Label is one name="value" pair stamped on a metric series.
type Label struct {
	Name  string
	Value string
}

// series is one exposed time series inside a metric family. Exactly one of
// the value sources is set.
type series struct {
	labels  string // pre-rendered `{a="b",c="d"}`, or ""
	counter *Counter
	gauge   *Gauge
	intFn   func() int64   // rendered %d
	floatFn func() float64 // rendered %g
	hist    *Histogram
	info    bool // constant 1 (build-info style)
}

// family is one named metric family: HELP/TYPE rendered once, then every
// series in registration order.
type family struct {
	name, help, typ string
	series          []*series
}

// Registry holds metric families in registration order and renders them as
// Prometheus text. Registration is typically done once at construction
// time; rendering may run concurrently with updates (scrapes see a racy
// but monotone snapshot).
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// renderLabels renders a label set as `{a="b",c="d"}` in the given order.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// add registers one series under a family, creating the family on first
// use and checking that re-used names agree on HELP and TYPE.
func (r *Registry) add(name, help, typ string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %s registered as both %s and %s", name, f.typ, typ))
	}
	for _, existing := range f.series {
		if existing.labels == s.labels {
			panic(fmt.Sprintf("telemetry: duplicate series %s%s", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.add(name, help, "counter", &series{labels: renderLabels(labels), counter: c})
	return c
}

// Gauge registers and returns a stored integer gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.add(name, help, "gauge", &series{labels: renderLabels(labels), gauge: g})
	return g
}

// IntGaugeFunc registers a gauge computed at scrape time and rendered as
// an integer (e.g. a queue depth read under the owner's lock).
func (r *Registry) IntGaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.add(name, help, "gauge", &series{labels: renderLabels(labels), intFn: fn})
}

// CounterFunc registers a counter computed at scrape time. The function
// must be monotone (e.g. mirroring a counter another subsystem already
// maintains); the registry trusts the caller on that, exactly as the
// Prometheus clients' CounterFunc does.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.add(name, help, "counter", &series{labels: renderLabels(labels), intFn: func() int64 { return int64(fn()) }})
}

// GaugeFunc registers a gauge computed at scrape time and rendered as a
// float (e.g. a hit rate derived from two counters in the scrape itself).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, "gauge", &series{labels: renderLabels(labels), floatFn: fn})
}

// Info registers a constant-1 gauge whose labels carry the payload
// (build-info convention).
func (r *Registry) Info(name, help string, labels ...Label) {
	r.add(name, help, "gauge", &series{labels: renderLabels(labels), info: true})
}

// Histogram registers and returns a histogram series. Families are shared:
// registering the same name with different labels (e.g. stage="queue_wait",
// stage="execute") yields one family with one series per label set. A
// series is omitted from the exposition until its first observation, like
// an untouched labelled child in the standard Prometheus clients.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	h := &Histogram{}
	r.add(name, help, "histogram", &series{labels: renderLabels(labels), hist: h})
	return h
}

// histLabel splices `le="bound"` (or the _sum/_count plain label set) into
// a series' pre-rendered labels.
func histLabel(labels, le string) string {
	if labels == "" {
		return fmt.Sprintf(`{le="%s"}`, le)
	}
	return fmt.Sprintf(`%s,le="%s"}`, labels[:len(labels)-1], le)
}

// WritePrometheus renders every family in registration order. Histogram
// series with zero observations are skipped (and a histogram family whose
// series are all empty is skipped entirely, HELP/TYPE included), so a
// registry migrated from a hand-written exposition body reproduces it
// byte for byte until the new instrumentation actually fires.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		live := f.series
		if f.typ == "histogram" {
			live = nil
			for _, s := range f.series {
				if s.hist.Count() > 0 {
					live = append(live, s)
				}
			}
			if len(live) == 0 {
				continue
			}
		}
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range live {
			switch {
			case s.counter != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.counter.Load())
			case s.gauge != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.gauge.Load())
			case s.intFn != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.intFn())
			case s.floatFn != nil:
				fmt.Fprintf(w, "%s%s %g\n", f.name, s.labels, s.floatFn())
			case s.info:
				fmt.Fprintf(w, "%s%s 1\n", f.name, s.labels)
			case s.hist != nil:
				cum := s.hist.cumulative()
				for i, b := range expositionBounds {
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, histLabel(s.labels, fmt.Sprintf("%g", b)), cum[i])
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, histLabel(s.labels, "+Inf"), cum[len(cum)-1])
				fmt.Fprintf(w, "%s_sum%s %g\n", f.name, s.labels, s.hist.Sum().Seconds())
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, cum[len(cum)-1])
			}
		}
	}
}

// ScrapedHistogram is one histogram series recovered from a Prometheus
// text scrape: its exposition bounds (seconds), cumulative counts (with
// the +Inf total appended) and sum. See ParseHistograms.
type ScrapedHistogram struct {
	// Bounds holds the finite le bounds in seconds, ascending.
	Bounds []float64
	// Cum holds one cumulative count per bound, then the +Inf total.
	Cum []uint64
	// Sum is the _sum sample in seconds.
	Sum float64
}

// Count returns the total observation count (the +Inf bucket).
func (s ScrapedHistogram) Count() uint64 {
	if len(s.Cum) == 0 {
		return 0
	}
	return s.Cum[len(s.Cum)-1]
}

// Quantile extracts the q-quantile in seconds at scrape resolution.
func (s ScrapedHistogram) Quantile(q float64) float64 {
	return QuantileFromCumulative(s.Bounds, s.Cum, q)
}

// Sub returns the histogram of observations recorded after the older
// scrape: per-bound cumulative counts and the sum are subtracted pairwise.
// This is how a load generator attributes a server's monotone histograms
// to one measurement window. It returns false when the two scrapes have
// different bounds (not the same series) or the counts went backwards
// (server restart between scrapes).
func (s ScrapedHistogram) Sub(older ScrapedHistogram) (ScrapedHistogram, bool) {
	if len(s.Bounds) != len(older.Bounds) || len(s.Cum) != len(older.Cum) {
		return ScrapedHistogram{}, false
	}
	out := ScrapedHistogram{
		Bounds: append([]float64(nil), s.Bounds...),
		Cum:    make([]uint64, len(s.Cum)),
		Sum:    s.Sum - older.Sum,
	}
	for i := range s.Bounds {
		if s.Bounds[i] != older.Bounds[i] {
			return ScrapedHistogram{}, false
		}
	}
	for i := range s.Cum {
		if s.Cum[i] < older.Cum[i] {
			return ScrapedHistogram{}, false
		}
		out.Cum[i] = s.Cum[i] - older.Cum[i]
	}
	return out, true
}

// ParseHistograms recovers every histogram series from a Prometheus text
// exposition body. The map key is the series identity: the family name
// followed by its non-le labels exactly as exposed (e.g.
// `mobiserved_stage_seconds{stage="queue_wait"}`). The parser accepts the
// subset of the format this package writes; unknown lines are ignored, so
// it is safe on a scrape that also carries counters and gauges.
func ParseHistograms(body string) map[string]ScrapedHistogram {
	type acc struct {
		bounds []float64
		cum    []uint64
		inf    uint64
		hasInf bool
		sum    float64
	}
	accs := make(map[string]*acc)
	get := func(key string) *acc {
		a, ok := accs[key]
		if !ok {
			a = &acc{}
			accs[key] = a
		}
		return a
	}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		name, value := line[:sp], line[sp+1:]
		switch {
		case strings.Contains(name, "_bucket"):
			key, le, ok := splitLE(name)
			if !ok {
				break
			}
			var n uint64
			if _, err := fmt.Sscanf(value, "%d", &n); err != nil {
				break
			}
			a := get(key)
			if le == "+Inf" {
				a.inf, a.hasInf = n, true
				break
			}
			var b float64
			if _, err := fmt.Sscanf(le, "%g", &b); err != nil {
				break
			}
			a.bounds = append(a.bounds, b)
			a.cum = append(a.cum, n)
		case strings.Contains(name, "_sum"):
			key := strings.Replace(name, "_sum", "", 1)
			var s float64
			if _, err := fmt.Sscanf(value, "%g", &s); err == nil {
				get(key).sum = s
			}
		}
	}
	out := make(map[string]ScrapedHistogram, len(accs))
	for key, a := range accs {
		if !a.hasInf {
			continue
		}
		sort.Sort(&boundSort{a.bounds, a.cum})
		out[key] = ScrapedHistogram{Bounds: a.bounds, Cum: append(a.cum, a.inf), Sum: a.sum}
	}
	return out
}

// splitLE splits a `<family>_bucket{...,le="x"}` sample name into the
// series key (family plus remaining labels) and the le value.
func splitLE(name string) (key, le string, ok bool) {
	open := strings.IndexByte(name, '{')
	if open < 0 || !strings.HasSuffix(name, "}") {
		return "", "", false
	}
	fam := strings.Replace(name[:open], "_bucket", "", 1)
	inner := name[open+1 : len(name)-1]
	var rest []string
	for _, part := range strings.Split(inner, ",") {
		if v, found := strings.CutPrefix(part, `le="`); found {
			le = strings.TrimSuffix(v, `"`)
			continue
		}
		rest = append(rest, part)
	}
	if le == "" {
		return "", "", false
	}
	if len(rest) == 0 {
		return fam, le, true
	}
	return fam + "{" + strings.Join(rest, ",") + "}", le, true
}

// boundSort sorts parsed bounds ascending, carrying the counts along.
type boundSort struct {
	bounds []float64
	cum    []uint64
}

func (b *boundSort) Len() int           { return len(b.bounds) }
func (b *boundSort) Less(i, j int) bool { return b.bounds[i] < b.bounds[j] }
func (b *boundSort) Swap(i, j int) {
	b.bounds[i], b.bounds[j] = b.bounds[j], b.bounds[i]
	b.cum[i], b.cum[j] = b.cum[j], b.cum[i]
}
