package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log-linear ("HDR-style") over int64 nanoseconds.
// Durations below 2^subBits ns get one exact bucket each; above that, every
// power-of-two octave is split into 2^subBits linear sub-buckets, so a
// recorded value's bucket spans at most value/2^subBits — a bounded 12.5%
// relative error for quantile extraction, at ~4 KB per histogram. Plain
// log-2 buckets would halve the memory but double the worst-case quantile
// error to 100%; fixed linear buckets would need an a-priori latency range,
// which a service mixing ~100 ns cache hits with multi-second cold
// simulations does not have. That spread is the whole point: tail latency
// (the p99), not the mean, is what distinguishes a healthy service from a
// saturated one.
const (
	subBits    = 3
	subBuckets = 1 << subBits // linear sub-buckets per octave
	// numBuckets covers every non-negative int64: subBuckets exact low
	// buckets plus (63-subBits+1) octaves of subBuckets each.
	numBuckets = subBuckets + (63-subBits+1)*subBuckets
)

// Histogram is a fixed-size, lock-free latency histogram. Record is
// allocation-free and safe for concurrent use; reads (Quantile, Count,
// Sum) take a racy-but-monotone snapshot, which is the right trade for
// monitoring. The zero value is ready to use.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	sum    atomic.Int64 // total recorded nanoseconds
}

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // position of the leading bit, >= subBits
	sub := int((v >> uint(e-subBits)) & (subBuckets - 1))
	return subBuckets + (e-subBits)*subBuckets + sub
}

// bucketBounds returns the half-open value range [lo, hi) of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i < subBuckets {
		return int64(i), int64(i) + 1
	}
	octave := (i - subBuckets) >> subBits
	sub := int64((i - subBuckets) & (subBuckets - 1))
	e := uint(octave + subBits)
	width := int64(1) << (e - subBits)
	lo = int64(1)<<e + sub*width
	return lo, lo + width
}

// Record adds one duration observation. Negative durations clamp to zero.
// It performs no allocation and takes no lock, so it is safe on request
// paths (it is still per-request machinery — keep it out of per-step
// simulation loops).
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// Since records the time elapsed since t0. It is the common instrumentation
// shape: t0 := time.Now(); defer h.Since(t0).
func (h *Histogram) Since(t0 time.Time) {
	h.Record(time.Since(t0))
}

// Count returns the total number of recorded observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the total recorded duration.
func (h *Histogram) Sum() time.Duration {
	return time.Duration(h.sum.Load())
}

// Quantile returns the q-quantile (0 <= q <= 1) of the recorded
// observations under the nearest-rank definition, linearly interpolated
// inside the bucket that holds the rank. Because the true rank value lies
// in the same bucket, the result is within 12.5% relative error of the
// exact sorted-sample quantile. It returns 0 when nothing was recorded or
// q is NaN.
func (h *Histogram) Quantile(q float64) time.Duration {
	if math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := bucketBounds(i)
			// Position of the rank inside this bucket, in (0, 1].
			frac := float64(rank-cum) / float64(c)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum += c
	}
	// Unreachable: rank <= total and the buckets sum to total.
	return 0
}

// expositionBounds are the cumulative upper bounds (seconds) used for the
// Prometheus text rendering: one per octave from 128 ns to ~8.6 s, plus the
// implicit +Inf. The histogram keeps 8x finer resolution internally for
// quantiles; the scrape only needs stable, monotone bucket edges.
var expositionBounds = func() []float64 {
	const loExp, hiExp = 7, 33 // 2^7 ns = 128 ns .. 2^33 ns ~ 8.6 s
	b := make([]float64, 0, hiExp-loExp+1)
	for e := loExp; e <= hiExp; e++ {
		b = append(b, float64(int64(1)<<uint(e))/1e9)
	}
	return b
}()

// cumulative returns the cumulative observation counts at each exposition
// bound, followed by the total (the +Inf bucket).
func (h *Histogram) cumulative() []uint64 {
	cum := make([]uint64, len(expositionBounds)+1)
	var run uint64
	next := 0
	for i := range h.counts {
		lo, _ := bucketBounds(i)
		for next < len(expositionBounds) && float64(lo)/1e9 >= expositionBounds[next] {
			cum[next] = run
			next++
		}
		run += h.counts[i].Load()
	}
	for ; next <= len(expositionBounds); next++ {
		cum[next] = run
	}
	return cum
}

// QuantileFromCumulative extracts the q-quantile from a cumulative bucket
// encoding: bounds[i] is the inclusive upper bound of bucket i and cum[i]
// the number of observations at or below it, with cum's final extra entry
// the +Inf total. This is the read-side counterpart of the Prometheus
// rendering — mobibench uses it to recover server-side stage latencies
// from a /metrics scrape — so its resolution is the scrape's (one octave),
// coarser than Histogram.Quantile on the live histogram. Returns 0 when
// the encoding is empty or malformed.
func QuantileFromCumulative(bounds []float64, cum []uint64, q float64) float64 {
	if len(cum) != len(bounds)+1 || len(bounds) == 0 || math.IsNaN(q) {
		return 0
	}
	total := cum[len(cum)-1]
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	lo := 0.0
	for i, b := range bounds {
		if cum[i] >= rank {
			var prev uint64
			if i > 0 {
				prev = cum[i-1]
			}
			frac := float64(rank-prev) / float64(cum[i]-prev)
			return lo + frac*(b-lo)
		}
		lo = b
	}
	// Rank falls in the +Inf bucket: report the last finite bound.
	return bounds[len(bounds)-1]
}
