package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusFormat pins the exposition grammar the registry
// emits: HELP/TYPE once per family in registration order, counters and
// integer gauges as %d, float gauges as %g, info gauges as a constant 1.
func TestWritePrometheusFormat(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests handled.")
	c.Add(41)
	c.Inc()
	g := r.Gauge("depth", "Queue depth.")
	g.Set(7)
	g.Add(-2)
	r.GaugeFunc("rate", "Hit rate.", func() float64 { return 0.75 })
	r.IntGaugeFunc("workers", "Pool size.", func() int64 { return 4 })
	r.Info("build_info", "Build metadata.", Label{"go_version", "go1.24.0"})

	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := `# HELP requests_total Requests handled.
# TYPE requests_total counter
requests_total 42
# HELP depth Queue depth.
# TYPE depth gauge
depth 5
# HELP rate Hit rate.
# TYPE rate gauge
rate 0.75
# HELP workers Pool size.
# TYPE workers gauge
workers 4
# HELP build_info Build metadata.
# TYPE build_info gauge
build_info{go_version="go1.24.0"} 1
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestHistogramLazySeries pins the lazily-materialised-series convention:
// an untouched histogram family contributes nothing to the body (HELP and
// TYPE included), touched series appear with buckets, sum and count, and
// untouched siblings in the same family stay hidden.
func TestHistogramLazySeries(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	a := r.Histogram("stage_seconds", "Stage latency.", Label{"stage", "a"})
	r.Histogram("stage_seconds", "Stage latency.", Label{"stage", "b"})
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if sb.Len() != 0 {
		t.Fatalf("untouched family rendered:\n%s", sb.String())
	}
	a.Record(time.Millisecond)
	sb.Reset()
	r.WritePrometheus(&sb)
	body := sb.String()
	for _, want := range []string{
		"# HELP stage_seconds Stage latency.",
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{stage="a",le="+Inf"} 1`,
		`stage_seconds_sum{stage="a"} 0.001`,
		`stage_seconds_count{stage="a"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("body missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, `stage="b"`) {
		t.Errorf("untouched series rendered:\n%s", body)
	}
	// Cumulative bucket counts must be monotone and end at the total.
	parsed := ParseHistograms(body)
	s, ok := parsed[`stage_seconds{stage="a"}`]
	if !ok || s.Count() != 1 {
		t.Fatalf("parse-back failed: %+v", parsed)
	}
	for i := 1; i < len(s.Cum); i++ {
		if s.Cum[i] < s.Cum[i-1] {
			t.Fatalf("cumulative counts not monotone at %d: %v", i, s.Cum)
		}
	}
}

func TestRegistryMisusePanics(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	r.Counter("x_total", "X.")
	mustPanic(t, "type mismatch", func() { r.Gauge("x_total", "X.") })
	mustPanic(t, "duplicate series", func() { r.Counter("x_total", "X.") })
	r.Histogram("h_seconds", "H.", Label{"stage", "a"})
	r.Histogram("h_seconds", "H.", Label{"stage", "b"}) // distinct labels: fine
	mustPanic(t, "duplicate labelled series", func() { r.Histogram("h_seconds", "H.", Label{"stage", "a"}) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

// TestRegistryConcurrentScrape races scrapes against updates; the race
// detector gates it, and the scraped value of a quiesced counter must be
// exact.
func TestRegistryConcurrentScrape(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("ops_total", "Ops.")
	h := r.Histogram("lat_seconds", "Latency.")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Inc()
				h.Record(time.Microsecond * time.Duration(i))
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		var sb strings.Builder
		r.WritePrometheus(&sb)
		select {
		case <-done:
			var final strings.Builder
			r.WritePrometheus(&final)
			if !strings.Contains(final.String(), "ops_total 8000") {
				t.Errorf("final scrape missing exact counter:\n%s", final.String())
			}
			return
		default:
		}
	}
}
