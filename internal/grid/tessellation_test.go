package grid

import (
	"testing"
	"testing/quick"
)

func TestTessellationBasics(t *testing.T) {
	t.Parallel()
	g := MustNew(16)
	tess := NewTessellation(g, 4)
	if tess.CellSide() != 4 || tess.PerRow() != 4 || tess.Cells() != 16 {
		t.Fatalf("got cellSide=%d perRow=%d cells=%d", tess.CellSide(), tess.PerRow(), tess.Cells())
	}
}

func TestTessellationClamping(t *testing.T) {
	t.Parallel()
	g := MustNew(8)
	if got := NewTessellation(g, 0).CellSide(); got != 1 {
		t.Errorf("cellSide 0 clamps to %d, want 1", got)
	}
	if got := NewTessellation(g, -3).CellSide(); got != 1 {
		t.Errorf("negative cellSide clamps to %d, want 1", got)
	}
	tess := NewTessellation(g, 100)
	if tess.CellSide() != 8 || tess.Cells() != 1 {
		t.Errorf("oversized cell: side=%d cells=%d, want 8/1", tess.CellSide(), tess.Cells())
	}
}

func TestTessellationTruncatedCells(t *testing.T) {
	t.Parallel()
	g := MustNew(10)
	tess := NewTessellation(g, 4) // 10 = 4+4+2, so 3 cells per row
	if tess.PerRow() != 3 || tess.Cells() != 9 {
		t.Fatalf("perRow=%d cells=%d, want 3/9", tess.PerRow(), tess.Cells())
	}
	// Point in the truncated corner cell.
	if got := tess.CellOf(Point{9, 9}); got != 8 {
		t.Errorf("CellOf(9,9) = %d, want 8", got)
	}
}

func TestCellOfPartitionsGrid(t *testing.T) {
	t.Parallel()
	g := MustNew(12)
	tess := NewTessellation(g, 5)
	counts := make(map[CellID]int)
	for y := int32(0); y < 12; y++ {
		for x := int32(0); x < 12; x++ {
			c := tess.CellOf(Point{x, y})
			if int(c) < 0 || int(c) >= tess.Cells() {
				t.Fatalf("CellOf(%d,%d) = %d out of range", x, y, c)
			}
			counts[c]++
		}
	}
	total := 0
	for _, v := range counts {
		total += v
	}
	if total != g.N() {
		t.Fatalf("cells cover %d nodes, want %d", total, g.N())
	}
	if len(counts) != tess.Cells() {
		t.Fatalf("%d distinct cells used, want %d", len(counts), tess.Cells())
	}
}

func TestCellOriginAndCenter(t *testing.T) {
	t.Parallel()
	g := MustNew(16)
	tess := NewTessellation(g, 4)
	for c := CellID(0); int(c) < tess.Cells(); c++ {
		o := tess.CellOrigin(c)
		if tess.CellOf(o) != c {
			t.Errorf("origin of cell %d maps back to %d", c, tess.CellOf(o))
		}
		ctr := tess.CellCenter(c)
		if tess.CellOf(ctr) != c {
			t.Errorf("center of cell %d maps back to %d", c, tess.CellOf(ctr))
		}
		if !g.Contains(ctr) {
			t.Errorf("center %v of cell %d off-grid", ctr, c)
		}
	}
}

func TestAdjacentCellsCounts(t *testing.T) {
	t.Parallel()
	g := MustNew(12)
	tess := NewTessellation(g, 4) // 3x3 cells
	wantCount := map[CellID]int{
		0: 2, 2: 2, 6: 2, 8: 2, // corners
		1: 3, 3: 3, 5: 3, 7: 3, // edges
		4: 4, // middle
	}
	var buf []CellID
	for c, want := range wantCount {
		buf = tess.AdjacentCells(c, buf[:0])
		if len(buf) != want {
			t.Errorf("cell %d: %d adjacent, want %d", c, len(buf), want)
		}
		for _, a := range buf {
			if a == c {
				t.Errorf("cell %d adjacent to itself", c)
			}
		}
	}
}

func TestAdjacencySymmetricProperty(t *testing.T) {
	t.Parallel()
	g := MustNew(20)
	tess := NewTessellation(g, 3)
	adj := func(a, b CellID) bool {
		var buf []CellID
		for _, v := range tess.AdjacentCells(a, buf) {
			if v == b {
				return true
			}
		}
		return false
	}
	f := func(raw uint16) bool {
		c := CellID(int(raw) % tess.Cells())
		var buf []CellID
		for _, b := range tess.AdjacentCells(c, buf) {
			if !adj(b, c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceToCell(t *testing.T) {
	t.Parallel()
	g := MustNew(12)
	tess := NewTessellation(g, 4)
	// Point inside its own cell.
	if d := tess.DistanceToCell(Point{1, 1}, tess.CellOf(Point{1, 1})); d != 0 {
		t.Errorf("distance to own cell = %d, want 0", d)
	}
	// Point (0,0) to middle cell (origin (4,4)): distance 4+4.
	mid := tess.CellOf(Point{5, 5})
	if d := tess.DistanceToCell(Point{0, 0}, mid); d != 8 {
		t.Errorf("distance (0,0)->mid = %d, want 8", d)
	}
	// One axis aligned: (5,0) to mid cell: only y gap of 4.
	if d := tess.DistanceToCell(Point{5, 0}, mid); d != 4 {
		t.Errorf("distance (5,0)->mid = %d, want 4", d)
	}
}

func TestDistanceToCellBruteForce(t *testing.T) {
	t.Parallel()
	g := MustNew(10)
	tess := NewTessellation(g, 3)
	for y := int32(0); y < 10; y += 3 {
		for x := int32(0); x < 10; x += 3 {
			p := Point{x, y}
			for c := CellID(0); int(c) < tess.Cells(); c++ {
				want := 1 << 30
				for yy := int32(0); yy < 10; yy++ {
					for xx := int32(0); xx < 10; xx++ {
						q := Point{xx, yy}
						if tess.CellOf(q) == c {
							if d := ManhattanPoints(p, q); d < want {
								want = d
							}
						}
					}
				}
				if got := tess.DistanceToCell(p, c); got != want {
					t.Errorf("DistanceToCell(%v, %d) = %d, want %d", p, c, got, want)
				}
			}
		}
	}
}
