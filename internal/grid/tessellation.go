package grid

import "fmt"

// Tessellation partitions a grid into square cells of a fixed side length.
// The paper's Theorem 1 proof tessellates G_n into cells of side
// l = sqrt(14 n log^3 n / (c3 k)); the simulator uses the same structure to
// track which cells the rumor has reached and when.
//
// Cells are indexed row-major by CellID in [0, Cells()). Cells in the last
// row/column may be narrower when CellSide does not divide Side.
type Tessellation struct {
	g        *Grid
	cellSide int32
	perRow   int32 // number of cells per row (= per column)
}

// CellID identifies one cell of a tessellation.
type CellID int32

// NewTessellation tiles g into cells of side cellSide. cellSide is clamped
// to [1, Side] so a requested cell larger than the grid collapses to a
// single cell.
func NewTessellation(g *Grid, cellSide int) *Tessellation {
	if cellSide < 1 {
		cellSide = 1
	}
	if cellSide > g.Side() {
		cellSide = g.Side()
	}
	cs := int32(cellSide)
	perRow := (g.side + cs - 1) / cs
	return &Tessellation{g: g, cellSide: cs, perRow: perRow}
}

// Grid returns the underlying grid.
func (t *Tessellation) Grid() *Grid { return t.g }

// CellSide returns the side length of (non-truncated) cells.
func (t *Tessellation) CellSide() int { return int(t.cellSide) }

// PerRow returns the number of cells in each row of the tessellation.
func (t *Tessellation) PerRow() int { return int(t.perRow) }

// Cells returns the total number of cells.
func (t *Tessellation) Cells() int { return int(t.perRow * t.perRow) }

// CellOf returns the cell containing point p.
func (t *Tessellation) CellOf(p Point) CellID {
	cx := p.X / t.cellSide
	cy := p.Y / t.cellSide
	return CellID(cy*t.perRow + cx)
}

// CellOrigin returns the minimal (top-left) point of cell c.
func (t *Tessellation) CellOrigin(c CellID) Point {
	cx := int32(c) % t.perRow
	cy := int32(c) / t.perRow
	return Point{cx * t.cellSide, cy * t.cellSide}
}

// CellCenter returns the node closest to the centre of cell c, clamped to
// the grid (relevant for truncated boundary cells).
func (t *Tessellation) CellCenter(c CellID) Point {
	o := t.CellOrigin(c)
	return t.g.Clamp(Point{o.X + t.cellSide/2, o.Y + t.cellSide/2})
}

// AdjacentCells appends the (up to 4) side-adjacent cells of c to buf and
// returns the extended slice.
func (t *Tessellation) AdjacentCells(c CellID, buf []CellID) []CellID {
	cx := int32(c) % t.perRow
	cy := int32(c) / t.perRow
	if cx > 0 {
		buf = append(buf, c-1)
	}
	if cx < t.perRow-1 {
		buf = append(buf, c+1)
	}
	if cy > 0 {
		buf = append(buf, c-CellID(t.perRow))
	}
	if cy < t.perRow-1 {
		buf = append(buf, c+CellID(t.perRow))
	}
	return buf
}

// DistanceToCell returns the Manhattan distance from point p to the nearest
// node of cell c (0 when p lies inside c).
func (t *Tessellation) DistanceToCell(p Point, c CellID) int {
	o := t.CellOrigin(c)
	maxX := o.X + t.cellSide - 1
	if maxX >= t.g.side {
		maxX = t.g.side - 1
	}
	maxY := o.Y + t.cellSide - 1
	if maxY >= t.g.side {
		maxY = t.g.side - 1
	}
	d := 0
	switch {
	case p.X < o.X:
		d += int(o.X - p.X)
	case p.X > maxX:
		d += int(p.X - maxX)
	}
	switch {
	case p.Y < o.Y:
		d += int(o.Y - p.Y)
	case p.Y > maxY:
		d += int(p.Y - maxY)
	}
	return d
}

// String implements fmt.Stringer.
func (t *Tessellation) String() string {
	return fmt.Sprintf("Tessellation(cell=%d, %dx%d cells)", t.cellSide, t.perRow, t.perRow)
}
