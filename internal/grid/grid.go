// Package grid models the n-node two-dimensional square grid G_n on which
// all agents of the simulator move, together with the Manhattan metric and
// the cell tessellation used by the paper's Theorem 1 analysis.
//
// Nodes are addressed two ways: as (x, y) coordinate pairs (type Point) and
// as flat indices in [0, n) (type NodeID). The flat form is what the hot
// simulation loops use; the coordinate form is what geometry code uses.
// Conversions are trivial arithmetic and both directions are exposed.
package grid

import (
	"fmt"
	"math"
)

// NodeID is the flat index of a grid node: id = y*Side + x.
type NodeID int32

// Point is a grid coordinate. Valid points satisfy 0 <= X, Y < Side for
// their grid.
type Point struct {
	X, Y int32
}

// Grid describes a Side x Side square lattice with N = Side*Side nodes.
// Grids are immutable after construction and safe for concurrent use.
type Grid struct {
	side int32
	n    int32
}

// New constructs the square grid with the given side length.
// It returns an error if side is not positive or if side*side overflows the
// int32 node-index space.
func New(side int) (*Grid, error) {
	if side <= 0 {
		return nil, fmt.Errorf("grid: side must be positive, got %d", side)
	}
	if side > 46340 { // floor(sqrt(MaxInt32))
		return nil, fmt.Errorf("grid: side %d too large (max 46340)", side)
	}
	s := int32(side)
	return &Grid{side: s, n: s * s}, nil
}

// MustNew is New, panicking on error; intended for tests and examples with
// compile-time-constant sides.
func MustNew(side int) *Grid {
	g, err := New(side)
	if err != nil {
		panic(err)
	}
	return g
}

// FromNodes returns a grid with at least n nodes, choosing the smallest
// square side with side*side >= n. This mirrors the paper's "n-node grid"
// parameterisation where only the node count matters asymptotically.
func FromNodes(n int) (*Grid, error) {
	if n <= 0 {
		return nil, fmt.Errorf("grid: node count must be positive, got %d", n)
	}
	side := int(math.Ceil(math.Sqrt(float64(n))))
	return New(side)
}

// Side returns the side length of the grid.
func (g *Grid) Side() int { return int(g.side) }

// N returns the number of nodes, Side*Side.
func (g *Grid) N() int { return int(g.n) }

// Diameter returns the Manhattan diameter of the grid, 2*(Side-1), which the
// paper writes as 2*sqrt(n)-2.
func (g *Grid) Diameter() int { return 2 * (int(g.side) - 1) }

// Contains reports whether p is a valid node of the grid.
func (g *Grid) Contains(p Point) bool {
	return p.X >= 0 && p.X < g.side && p.Y >= 0 && p.Y < g.side
}

// ID converts a coordinate to its flat node index. The point must be on the
// grid; out-of-range points yield undefined IDs (checked only in tests to
// keep the hot path branch-free).
func (g *Grid) ID(p Point) NodeID {
	return NodeID(p.Y*g.side + p.X)
}

// Point converts a flat node index back to its coordinate.
func (g *Grid) Point(id NodeID) Point {
	return Point{X: int32(id) % g.side, Y: int32(id) / g.side}
}

// ManhattanPoints returns the Manhattan (L1) distance between two points,
// the metric the paper uses throughout (its footnote 2).
func ManhattanPoints(a, b Point) int {
	dx := int(a.X) - int(b.X)
	if dx < 0 {
		dx = -dx
	}
	dy := int(a.Y) - int(b.Y)
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Manhattan returns the Manhattan distance between two nodes given by ID.
func (g *Grid) Manhattan(a, b NodeID) int {
	return ManhattanPoints(g.Point(a), g.Point(b))
}

// Degree returns the number of grid neighbours of p: 2 at corners, 3 on
// edges, 4 in the interior. The paper writes this as nv.
func (g *Grid) Degree(p Point) int {
	d := 4
	if p.X == 0 || p.X == g.side-1 {
		d--
	}
	if p.Y == 0 || p.Y == g.side-1 {
		d--
	}
	if g.side == 1 {
		return 0
	}
	return d
}

// Neighbors appends the grid neighbours of p to buf and returns the extended
// slice. Passing a reusable buffer keeps simulation loops allocation-free.
func (g *Grid) Neighbors(p Point, buf []Point) []Point {
	if p.X > 0 {
		buf = append(buf, Point{p.X - 1, p.Y})
	}
	if p.X < g.side-1 {
		buf = append(buf, Point{p.X + 1, p.Y})
	}
	if p.Y > 0 {
		buf = append(buf, Point{p.X, p.Y - 1})
	}
	if p.Y < g.side-1 {
		buf = append(buf, Point{p.X, p.Y + 1})
	}
	return buf
}

// Clamp returns the nearest valid grid point to p (component-wise clamping).
func (g *Grid) Clamp(p Point) Point {
	if p.X < 0 {
		p.X = 0
	} else if p.X >= g.side {
		p.X = g.side - 1
	}
	if p.Y < 0 {
		p.Y = 0
	} else if p.Y >= g.side {
		p.Y = g.side - 1
	}
	return p
}

// Center returns the node closest to the geometric centre of the grid.
func (g *Grid) Center() Point {
	return Point{g.side / 2, g.side / 2}
}

// DiscSize returns the number of grid nodes within Manhattan distance r of
// the given point, accounting for boundary truncation. For interior points
// far from boundaries this is the full L1 ball size 2r^2+2r+1.
func (g *Grid) DiscSize(p Point, r int) int {
	if r < 0 {
		return 0
	}
	count := 0
	for dy := -r; dy <= r; dy++ {
		y := int(p.Y) + dy
		if y < 0 || y >= int(g.side) {
			continue
		}
		span := r - abs(dy)
		lo := int(p.X) - span
		hi := int(p.X) + span
		if lo < 0 {
			lo = 0
		}
		if hi >= int(g.side) {
			hi = int(g.side) - 1
		}
		if hi >= lo {
			count += hi - lo + 1
		}
	}
	return count
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// String implements fmt.Stringer.
func (g *Grid) String() string {
	return fmt.Sprintf("Grid(%dx%d, n=%d)", g.side, g.side, g.n)
}
