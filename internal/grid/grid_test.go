package grid

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	t.Parallel()
	for _, side := range []int{0, -1, 46341} {
		if _, err := New(side); err == nil {
			t.Errorf("New(%d) should fail", side)
		}
	}
	g, err := New(8)
	if err != nil {
		t.Fatalf("New(8): %v", err)
	}
	if g.Side() != 8 || g.N() != 64 {
		t.Errorf("got side=%d n=%d, want 8/64", g.Side(), g.N())
	}
}

func TestFromNodes(t *testing.T) {
	t.Parallel()
	cases := []struct {
		n    int
		side int
	}{
		{1, 1}, {2, 2}, {4, 2}, {5, 3}, {9, 3}, {100, 10}, {101, 11}, {16384, 128},
	}
	for _, tc := range cases {
		g, err := FromNodes(tc.n)
		if err != nil {
			t.Fatalf("FromNodes(%d): %v", tc.n, err)
		}
		if g.Side() != tc.side {
			t.Errorf("FromNodes(%d).Side() = %d, want %d", tc.n, g.Side(), tc.side)
		}
		if g.N() < tc.n {
			t.Errorf("FromNodes(%d).N() = %d < requested", tc.n, g.N())
		}
	}
	if _, err := FromNodes(0); err == nil {
		t.Error("FromNodes(0) should fail")
	}
}

func TestIDPointRoundTrip(t *testing.T) {
	t.Parallel()
	g := MustNew(13)
	for y := int32(0); y < 13; y++ {
		for x := int32(0); x < 13; x++ {
			p := Point{x, y}
			if got := g.Point(g.ID(p)); got != p {
				t.Fatalf("round trip %v -> %v", p, got)
			}
		}
	}
	// IDs must be a bijection onto [0, N).
	seen := make(map[NodeID]bool, g.N())
	for y := int32(0); y < 13; y++ {
		for x := int32(0); x < 13; x++ {
			id := g.ID(Point{x, y})
			if id < 0 || int(id) >= g.N() || seen[id] {
				t.Fatalf("ID(%d,%d) = %d invalid or duplicate", x, y, id)
			}
			seen[id] = true
		}
	}
}

func TestManhattanMetricAxioms(t *testing.T) {
	t.Parallel()
	g := MustNew(32)
	// Property-based check of metric axioms on random triples.
	f := func(ax, ay, bx, by, cx, cy uint8) bool {
		a := Point{int32(ax) % 32, int32(ay) % 32}
		b := Point{int32(bx) % 32, int32(by) % 32}
		c := Point{int32(cx) % 32, int32(cy) % 32}
		dab := ManhattanPoints(a, b)
		dba := ManhattanPoints(b, a)
		dac := ManhattanPoints(a, c)
		dcb := ManhattanPoints(c, b)
		if dab != dba { // symmetry
			return false
		}
		if (dab == 0) != (a == b) { // identity of indiscernibles
			return false
		}
		if dab > dac+dcb { // triangle inequality
			return false
		}
		return g.Manhattan(g.ID(a), g.ID(b)) == dab // ID form agrees
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDegree(t *testing.T) {
	t.Parallel()
	g := MustNew(5)
	cases := []struct {
		p    Point
		want int
	}{
		{Point{0, 0}, 2}, {Point{4, 4}, 2}, {Point{0, 4}, 2}, {Point{4, 0}, 2},
		{Point{2, 0}, 3}, {Point{0, 2}, 3}, {Point{4, 2}, 3}, {Point{2, 4}, 3},
		{Point{2, 2}, 4}, {Point{1, 1}, 4},
	}
	for _, tc := range cases {
		if got := g.Degree(tc.p); got != tc.want {
			t.Errorf("Degree(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
}

func TestDegreeDegenerate(t *testing.T) {
	t.Parallel()
	g1 := MustNew(1)
	if got := g1.Degree(Point{0, 0}); got != 0 {
		t.Errorf("1x1 grid degree = %d, want 0", got)
	}
	g2 := MustNew(2)
	if got := g2.Degree(Point{0, 0}); got != 2 {
		t.Errorf("2x2 grid corner degree = %d, want 2", got)
	}
}

func TestNeighborsMatchDegree(t *testing.T) {
	t.Parallel()
	g := MustNew(7)
	var buf []Point
	for y := int32(0); y < 7; y++ {
		for x := int32(0); x < 7; x++ {
			p := Point{x, y}
			buf = g.Neighbors(p, buf[:0])
			if len(buf) != g.Degree(p) {
				t.Fatalf("Neighbors(%v) count %d != Degree %d", p, len(buf), g.Degree(p))
			}
			for _, q := range buf {
				if !g.Contains(q) {
					t.Fatalf("neighbor %v of %v off-grid", q, p)
				}
				if ManhattanPoints(p, q) != 1 {
					t.Fatalf("neighbor %v of %v not at distance 1", q, p)
				}
			}
		}
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	t.Parallel()
	g := MustNew(6)
	adj := func(p, q Point) bool {
		var buf []Point
		for _, v := range g.Neighbors(p, buf) {
			if v == q {
				return true
			}
		}
		return false
	}
	for y := int32(0); y < 6; y++ {
		for x := int32(0); x < 6; x++ {
			p := Point{x, y}
			var buf []Point
			for _, q := range g.Neighbors(p, buf) {
				if !adj(q, p) {
					t.Fatalf("adjacency not symmetric: %v->%v", p, q)
				}
			}
		}
	}
}

func TestClamp(t *testing.T) {
	t.Parallel()
	g := MustNew(4)
	cases := []struct{ in, want Point }{
		{Point{-1, 2}, Point{0, 2}},
		{Point{5, 2}, Point{3, 2}},
		{Point{2, -7}, Point{2, 0}},
		{Point{2, 9}, Point{2, 3}},
		{Point{1, 1}, Point{1, 1}},
		{Point{-3, 12}, Point{0, 3}},
	}
	for _, tc := range cases {
		if got := g.Clamp(tc.in); got != tc.want {
			t.Errorf("Clamp(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestDiameter(t *testing.T) {
	t.Parallel()
	g := MustNew(10)
	if got := g.Diameter(); got != 18 {
		t.Errorf("Diameter = %d, want 18", got)
	}
	// The diameter is realised by opposite corners.
	d := ManhattanPoints(Point{0, 0}, Point{9, 9})
	if d != g.Diameter() {
		t.Errorf("corner distance %d != diameter %d", d, g.Diameter())
	}
}

func TestDiscSizeInterior(t *testing.T) {
	t.Parallel()
	g := MustNew(101)
	c := g.Center()
	for r := 0; r <= 10; r++ {
		want := 2*r*r + 2*r + 1 // closed-form L1 ball size
		if got := g.DiscSize(c, r); got != want {
			t.Errorf("DiscSize(center, %d) = %d, want %d", r, got, want)
		}
	}
	if got := g.DiscSize(c, -1); got != 0 {
		t.Errorf("DiscSize(r=-1) = %d, want 0", got)
	}
}

func TestDiscSizeCornerTruncation(t *testing.T) {
	t.Parallel()
	g := MustNew(100)
	corner := Point{0, 0}
	// At the corner only one quadrant survives: sum_{d=0}^{r} (d+1).
	for r := 0; r <= 5; r++ {
		want := (r + 1) * (r + 2) / 2
		if got := g.DiscSize(corner, r); got != want {
			t.Errorf("DiscSize(corner, %d) = %d, want %d", r, got, want)
		}
	}
}

func TestDiscSizeBruteForce(t *testing.T) {
	t.Parallel()
	g := MustNew(9)
	for y := int32(0); y < 9; y += 2 {
		for x := int32(0); x < 9; x += 2 {
			p := Point{x, y}
			for r := 0; r <= 6; r += 2 {
				want := 0
				for yy := int32(0); yy < 9; yy++ {
					for xx := int32(0); xx < 9; xx++ {
						if ManhattanPoints(p, Point{xx, yy}) <= r {
							want++
						}
					}
				}
				if got := g.DiscSize(p, r); got != want {
					t.Errorf("DiscSize(%v, %d) = %d, want %d", p, r, got, want)
				}
			}
		}
	}
}

func TestCenterContained(t *testing.T) {
	t.Parallel()
	for _, side := range []int{1, 2, 3, 8, 9} {
		g := MustNew(side)
		if !g.Contains(g.Center()) {
			t.Errorf("side %d: center %v off-grid", side, g.Center())
		}
	}
}

func TestStringFormat(t *testing.T) {
	t.Parallel()
	g := MustNew(4)
	if got := g.String(); got != "Grid(4x4, n=16)" {
		t.Errorf("String() = %q", got)
	}
}
