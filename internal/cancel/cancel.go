// Package cancel provides an amortized, allocation-free cancellation
// check for simulation step loops.
//
// Engines run millions of steps per second; consulting a context's Done
// channel on every step would put a select on the hot path. A Check
// polls the channel once every N Stop calls instead, so the per-step
// cost is an integer increment and a predictable branch, and a
// cancelled run still halts within one poll interval (N steps).
//
// Like prof.StepProfile, a nil *Check is inert: every method is safe to
// call on a nil receiver and compiles down to a constant-false branch.
// Library callers that run without deadlines pass a background context,
// get a nil Check back from New, and pay nothing.
//
// A Check is confined to one replicate's goroutine; it is not safe for
// concurrent use, mirroring the engines it instruments.
package cancel

import "context"

// DefaultEvery is the poll interval used when New is given a
// non-positive interval: the Done channel is consulted once every
// DefaultEvery Stop calls. Steps in this codebase range from ~100ns
// (small grids) to ~1s (memory-bound million-node grids); 32 keeps the
// amortized cost negligible for tiny steps while bounding the
// cancellation latency of huge ones to a few dozen steps.
const DefaultEvery = 32

// Check is an amortized cancellation probe. The zero value is unusable;
// obtain one from New. A nil *Check is valid and never stops.
type Check struct {
	done    <-chan struct{}
	hook    func() // optional; runs at every poll (fault injection seam)
	every   uint32
	n       uint32
	stopped bool
}

// New returns a Check that polls ctx.Done() once every `every` Stop
// calls (DefaultEvery when every <= 0). When the context can never be
// cancelled (ctx is nil or Done returns nil) and the context carries no
// hook, New returns nil so the caller's loop pays only the nil-receiver
// branch.
func New(ctx context.Context, every int) *Check {
	var done <-chan struct{}
	var hook func()
	if ctx != nil {
		done = ctx.Done()
		hook = hookFrom(ctx)
	}
	if done == nil && hook == nil {
		return nil
	}
	if every <= 0 {
		every = DefaultEvery
	}
	return &Check{done: done, hook: hook, every: uint32(every)}
}

// Stop reports whether the run should halt. It is designed to sit in a
// step-loop condition: cheap increment on most calls, a non-blocking
// channel poll every `every` calls. Once it has observed cancellation
// it stays true without further polling.
func (c *Check) Stop() bool {
	if c == nil {
		return false
	}
	if c.stopped {
		return true
	}
	c.n++
	if c.n < c.every {
		return false
	}
	c.n = 0
	if c.hook != nil {
		c.hook()
	}
	if c.done == nil {
		return false
	}
	select {
	case <-c.done:
		c.stopped = true
	default:
	}
	return c.stopped
}

// Stopped reports whether a previous Stop observed cancellation. It
// never polls; use it after a run loop exits to distinguish "finished"
// from "aborted".
func (c *Check) Stopped() bool {
	return c != nil && c.stopped
}

type hookKey struct{}

// WithHook returns a context carrying a function that New installs into
// the Check it builds: the hook runs at every poll, off the per-step
// fast path. It exists for fault injection (chaos slow-step) and
// instrumentation; engines stay ignorant of both.
func WithHook(ctx context.Context, hook func()) context.Context {
	if hook == nil {
		return ctx
	}
	return context.WithValue(ctx, hookKey{}, hook)
}

func hookFrom(ctx context.Context) func() {
	hook, _ := ctx.Value(hookKey{}).(func())
	return hook
}
