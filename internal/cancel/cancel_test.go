package cancel

import (
	"context"
	"testing"
)

func TestNilCheckNeverStops(t *testing.T) {
	var c *Check
	for i := 0; i < 1000; i++ {
		if c.Stop() {
			t.Fatal("nil Check stopped")
		}
	}
	if c.Stopped() {
		t.Fatal("nil Check reports Stopped")
	}
}

func TestNewReturnsNilForUncancellableContext(t *testing.T) {
	if c := New(context.Background(), 8); c != nil {
		t.Errorf("New(Background) = %v, want nil", c)
	}
	if c := New(nil, 8); c != nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Errorf("New(nil) = %v, want nil", c)
	}
}

func TestStopWithinOneInterval(t *testing.T) {
	ctx, cancelCtx := context.WithCancel(context.Background())
	const every = 16
	c := New(ctx, every)
	if c == nil {
		t.Fatal("New returned nil for a cancellable context")
	}
	// Not cancelled: never stops, regardless of call count.
	for i := 0; i < 10*every; i++ {
		if c.Stop() {
			t.Fatalf("stopped at call %d with live context", i)
		}
	}
	cancelCtx()
	// Cancelled: stops within one interval of calls.
	calls := 0
	for ; calls <= every; calls++ {
		if c.Stop() {
			break
		}
	}
	if calls > every {
		t.Fatalf("did not stop within %d calls of cancellation", every)
	}
	if !c.Stopped() {
		t.Error("Stopped() false after Stop observed cancellation")
	}
	// Sticky: stays stopped.
	if !c.Stop() {
		t.Error("Stop() reverted to false")
	}
}

func TestDefaultEvery(t *testing.T) {
	ctx, cancelCtx := context.WithCancel(context.Background())
	defer cancelCtx()
	c := New(ctx, 0)
	if c.every != DefaultEvery {
		t.Errorf("every = %d, want DefaultEvery (%d)", c.every, DefaultEvery)
	}
}

// TestHookRunsOncePerInterval pins the amortization contract the chaos
// slow-step point relies on: the hook fires exactly once every `every`
// Stop calls, never on the fast path.
func TestHookRunsOncePerInterval(t *testing.T) {
	const every = 8
	calls := 0
	ctx := WithHook(context.Background(), func() { calls++ })
	c := New(ctx, every)
	if c == nil {
		t.Fatal("New returned nil for a hook-carrying context")
	}
	for i := 0; i < 5*every; i++ {
		c.Stop()
	}
	if calls != 5 {
		t.Errorf("hook ran %d times over %d calls, want 5", calls, 5*every)
	}
}

func TestHookAndCancellationCompose(t *testing.T) {
	ctx, cancelCtx := context.WithCancel(context.Background())
	hooked := 0
	c := New(WithHook(ctx, func() { hooked++ }), 4)
	cancelCtx()
	stopped := false
	for i := 0; i < 8 && !stopped; i++ {
		stopped = c.Stop()
	}
	if !stopped || hooked == 0 {
		t.Errorf("stopped=%v hooked=%d, want both", stopped, hooked)
	}
}

func TestWithHookNilIsIdentity(t *testing.T) {
	ctx := context.Background()
	if got := WithHook(ctx, nil); got != ctx {
		t.Error("WithHook(ctx, nil) wrapped the context")
	}
}

// TestStopAllocs pins the zero-alloc contract: Stop must be safe to
// call inside engine step loops that promise 0 allocs/op.
func TestStopAllocs(t *testing.T) {
	ctx, cancelCtx := context.WithCancel(context.Background())
	defer cancelCtx()
	c := New(ctx, 4)
	if avg := testing.AllocsPerRun(1000, func() { c.Stop() }); avg != 0 {
		t.Errorf("Stop allocates %.1f per call, want 0", avg)
	}
	var nilC *Check
	if avg := testing.AllocsPerRun(1000, func() { nilC.Stop() }); avg != 0 {
		t.Errorf("nil Stop allocates %.1f per call, want 0", avg)
	}
}

func BenchmarkStop(b *testing.B) {
	ctx, cancelCtx := context.WithCancel(context.Background())
	defer cancelCtx()
	c := New(ctx, DefaultEvery)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Stop()
	}
}

func BenchmarkStopNil(b *testing.B) {
	var c *Check
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Stop()
	}
}
