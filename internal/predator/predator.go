// Package predator implements the random predator-prey system from the
// paper's Section 4: k predators and m preys all perform independent lazy
// random walks on the grid; a prey is caught (and removed) whenever it
// shares a node with — or comes within the capture radius of — a predator.
// The extinction time is the first step with no surviving prey. The paper
// derives the high-probability bound O((n log^2 n)/k), validated by
// Experiment E13.
package predator

import (
	"fmt"

	"mobilenet/internal/cancel"
	"mobilenet/internal/grid"
	"mobilenet/internal/mobility"
	"mobilenet/internal/obs"
	"mobilenet/internal/prof"
	"mobilenet/internal/rng"
	"mobilenet/internal/theory"
)

// Config parameterises a predator-prey run.
type Config struct {
	// Grid is the arena. Required.
	Grid *grid.Grid
	// Predators is the number of predators k. Required, positive.
	Predators int
	// Preys is the number of preys m. Required, positive.
	Preys int
	// Radius is the capture radius (Manhattan); 0 means same-node capture.
	Radius int
	// Seed drives placement and motion.
	Seed uint64
	// MaxSteps caps the run; 0 selects a default derived from the paper's
	// O((n log^2 n)/k) extinction bound with generous headroom.
	MaxSteps int
	// Mobility selects the motion model both predators and preys follow
	// (each species gets its own model state); nil selects the lazy walk.
	Mobility mobility.Model
	// Observer, when non-nil, receives a per-step sample (including the
	// t=0 capture pass) at the recorder's cadence: the caught-prey count
	// as "informed" — the predator system's dissemination-progress
	// analogue.
	Observer *obs.Recorder
	// Profile, when non-nil, accumulates per-phase step timings: the
	// spatial-hash rebuild is the index phase and the prey scan the spread
	// phase. A nil profile costs a branch per phase.
	Profile *prof.StepProfile
	// Cancel, when non-nil, halts the run loop at a step boundary once its
	// context is cancelled (see core.Config.Cancel); nil costs a
	// constant-false branch.
	Cancel *cancel.Check
}

func (c *Config) validate() error {
	if c.Grid == nil {
		return fmt.Errorf("predator: config requires a grid")
	}
	if c.Predators <= 0 {
		return fmt.Errorf("predator: need at least one predator, got %d", c.Predators)
	}
	if c.Preys <= 0 {
		return fmt.Errorf("predator: need at least one prey, got %d", c.Preys)
	}
	if c.Radius < 0 {
		return fmt.Errorf("predator: negative radius %d", c.Radius)
	}
	if c.MaxSteps < 0 {
		return fmt.Errorf("predator: negative MaxSteps %d", c.MaxSteps)
	}
	return nil
}

func (c *Config) maxSteps() int {
	if c.MaxSteps > 0 {
		return c.MaxSteps
	}
	v := int(256 * theory.ExtinctionBound(c.Grid.N(), c.Predators))
	if v < 4096 {
		v = 4096
	}
	return v
}

// System is a running predator-prey simulation.
type System struct {
	cfg       Config
	g         *grid.Grid
	src       *rng.Source
	predators []grid.Point
	preys     []grid.Point // all preys; caught ones stay in place, masked out
	preyAlive []bool       // alive mask, index-stable so mobility state stays aligned
	alive     int
	t         int

	predMob mobility.State
	preyMob mobility.State

	// occupied buckets predators by coarse cell for the capture check. When
	// the predator mobility state reports per-step moves, the hash is
	// maintained incrementally — only predators whose cell changed are
	// re-bucketed — instead of being rebuilt from scratch every step.
	occupied  map[uint64][]int32
	pool      [][]int32
	predKey   []uint64 // current bucket key per predator (valid iff hashLive)
	predSlot  []int32  // predator's index within its bucket slice
	predMoved []int32  // per-step moved-predator scratch
	hashLive  bool
}

// New places predators and preys (per the configured mobility model, by
// default uniformly at random) and performs the time-0 capture pass.
func New(cfg Config) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	model := cfg.Mobility
	if model == nil {
		model = mobility.Default()
	}
	predMob, err := model.Bind(cfg.Grid, cfg.Predators, src)
	if err != nil {
		return nil, err
	}
	preyModel := model
	if tr, ok := model.(mobility.TraceReplay); ok {
		// Both species share one recording; without an offset, prey i
		// would replay the same trace agent as predator i and be captured
		// at time 0. Preys take the agent slice after the predators'.
		tr.Offset += cfg.Predators
		preyModel = tr
	}
	preyMob, err := preyModel.Bind(cfg.Grid, cfg.Preys, src)
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:       cfg,
		g:         cfg.Grid,
		src:       src,
		predators: make([]grid.Point, cfg.Predators),
		preys:     make([]grid.Point, cfg.Preys),
		preyAlive: make([]bool, cfg.Preys),
		alive:     cfg.Preys,
		predMob:   predMob,
		preyMob:   preyMob,
		occupied:  make(map[uint64][]int32, cfg.Predators),
	}
	predMob.Place(s.predators)
	preyMob.Place(s.preys)
	for i := range s.preyAlive {
		s.preyAlive[i] = true
	}
	cfg.Profile.Mark()
	s.capture(nil, false)
	s.observe()
	return s, nil
}

// observe records the current step's sample when the observer's cadence
// asks for it.
func (s *System) observe() {
	if o := s.cfg.Observer; o != nil && o.Wants(s.t) {
		o.Record(s.t, obs.Sample{Informed: s.cfg.Preys - s.alive})
	}
	s.cfg.Profile.Lap(prof.Observe)
}

func bucketKey(bx, by int32) uint64 {
	return uint64(uint32(bx))<<32 | uint64(uint32(by))
}

// cellSize resolves the capture-hash cell side for the configured radius.
func (s *System) cellSize() int32 {
	cell := int32(s.cfg.Radius)
	if cell < 1 {
		cell = 1
	}
	return cell
}

// insertPredator adds predator i to the bucket for key, recording its slot.
func (s *System) insertPredator(i int32, key uint64) {
	b, ok := s.occupied[key]
	if !ok && len(s.pool) > 0 {
		n := len(s.pool)
		b = s.pool[n-1]
		s.pool = s.pool[:n-1]
	}
	s.predSlot[i] = int32(len(b))
	s.occupied[key] = append(b, i)
	s.predKey[i] = key
}

// removePredator takes predator i out of its current bucket by swap-remove;
// emptied buckets return their backing slice to the pool so the map tracks
// only occupied cells no matter how far the predators roam.
func (s *System) removePredator(i int32) {
	key := s.predKey[i]
	b := s.occupied[key]
	last := len(b) - 1
	slot := s.predSlot[i]
	movedIn := b[last]
	b[slot] = movedIn
	s.predSlot[movedIn] = slot
	b = b[:last]
	if last == 0 {
		s.pool = append(s.pool, b)
		delete(s.occupied, key)
	} else {
		s.occupied[key] = b
	}
}

// rebuildHash derives the predator spatial hash from scratch.
func (s *System) rebuildHash(cell int32) {
	for key, b := range s.occupied {
		s.pool = append(s.pool, b[:0])
		delete(s.occupied, key)
	}
	if s.predKey == nil {
		s.predKey = make([]uint64, len(s.predators))
		s.predSlot = make([]int32, len(s.predators))
	}
	for i := range s.predators {
		s.insertPredator(int32(i), bucketKey(s.predators[i].X/cell, s.predators[i].Y/cell))
	}
	s.hashLive = true
}

// updateHash re-buckets exactly the predators that moved this step.
func (s *System) updateHash(cell int32, moved []int32) {
	for _, i := range moved {
		key := bucketKey(s.predators[i].X/cell, s.predators[i].Y/cell)
		if key == s.predKey[i] {
			continue
		}
		s.removePredator(i)
		s.insertPredator(i, key)
	}
}

// capture removes every prey within the capture radius of some predator.
// moved, when movedOK, lists the predators that changed position since the
// hash was last current, enabling the incremental bucket update.
func (s *System) capture(moved []int32, movedOK bool) {
	if s.alive == 0 {
		s.cfg.Profile.Lap(prof.Spread)
		return
	}
	r := s.cfg.Radius
	cell := s.cellSize()
	if s.hashLive && movedOK {
		s.updateHash(cell, moved)
	} else {
		s.rebuildHash(cell)
	}
	s.cfg.Profile.Lap(prof.Index)
	// Check each surviving prey against predators in its 3x3 cell
	// neighbourhood. Caught preys are masked out rather than compacted so
	// prey indices stay aligned with the mobility state's per-agent
	// bookkeeping (waypoint destinations, trace clocks, ...).
	for qi, p := range s.preys {
		if !s.preyAlive[qi] {
			continue
		}
		bx, by := p.X/cell, p.Y/cell
	scan:
		for dy := int32(-1); dy <= 1; dy++ {
			for dx := int32(-1); dx <= 1; dx++ {
				for _, pi := range s.occupied[bucketKey(bx+dx, by+dy)] {
					if grid.ManhattanPoints(p, s.predators[pi]) <= r {
						s.preyAlive[qi] = false
						s.alive--
						break scan
					}
				}
			}
		}
	}
	s.cfg.Profile.Lap(prof.Spread)
}

// Step advances one time unit: predators and surviving preys all move, then
// captures are resolved. Surviving preys step in index order, which matches
// the relative order the pre-mask compacting implementation used, so
// default-model runs consume randomness identically.
func (s *System) Step() {
	p := s.cfg.Profile
	p.Mark()
	var moved []int32
	movedOK := false
	if ms, ok := s.predMob.(mobility.MovedStepper); ok {
		s.predMoved = ms.StepMoved(s.predators, s.predMoved[:0])
		moved, movedOK = s.predMoved, true
	} else {
		s.predMob.Step(s.predators)
	}
	for i := range s.preys {
		if s.preyAlive[i] {
			s.preyMob.StepAgent(s.preys, i)
		}
	}
	s.t++
	p.Lap(prof.Move)
	s.capture(moved, movedOK)
	s.observe()
	p.StepDone()
}

// Done reports whether all preys are extinct.
func (s *System) Done() bool { return s.alive == 0 }

// Time returns the simulation time.
func (s *System) Time() int { return s.t }

// Alive returns the number of surviving preys.
func (s *System) Alive() int { return s.alive }

// Result summarises a predator-prey run.
type Result struct {
	// Steps is the extinction time. Valid only when Completed.
	Steps int
	// Completed is false when MaxSteps was reached with preys surviving.
	Completed bool
	// Survivors is the number of preys alive at the end (0 when Completed).
	Survivors int
}

// Run advances until extinction or the step cap.
func (s *System) Run() Result {
	stepCap := s.cfg.maxSteps()
	for !s.Done() && s.t < stepCap && !s.cfg.Cancel.Stop() {
		s.Step()
	}
	return Result{Steps: s.t, Completed: s.Done(), Survivors: s.alive}
}

// RunExtinction is the one-shot convenience wrapper.
func RunExtinction(cfg Config) (Result, error) {
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Run(), nil
}
