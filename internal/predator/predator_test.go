package predator

import (
	"testing"

	"mobilenet/internal/grid"
	"mobilenet/internal/mobility"
	"mobilenet/internal/trace"
)

func cfg(side, k, m, r int, seed uint64) Config {
	return Config{Grid: grid.MustNew(side), Predators: k, Preys: m, Radius: r, Seed: seed}
}

func TestValidation(t *testing.T) {
	t.Parallel()
	g := grid.MustNew(8)
	bad := []Config{
		{Predators: 1, Preys: 1},
		{Grid: g, Predators: 0, Preys: 1},
		{Grid: g, Predators: 1, Preys: 0},
		{Grid: g, Predators: 1, Preys: 1, Radius: -1},
		{Grid: g, Predators: 1, Preys: 1, MaxSteps: -1},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestExtinctionCompletes(t *testing.T) {
	t.Parallel()
	res, err := RunExtinction(cfg(8, 6, 4, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("extinction incomplete: %+v", res)
	}
	if res.Survivors != 0 {
		t.Fatalf("completed with %d survivors", res.Survivors)
	}
}

func TestAliveMonotone(t *testing.T) {
	t.Parallel()
	s, err := New(cfg(12, 4, 10, 0, 3))
	if err != nil {
		t.Fatal(err)
	}
	prev := s.Alive()
	for step := 0; step < 2000 && !s.Done(); step++ {
		s.Step()
		if s.Alive() > prev {
			t.Fatalf("prey count increased at t=%d", s.Time())
		}
		prev = s.Alive()
	}
}

func TestGiantRadiusInstantExtinction(t *testing.T) {
	t.Parallel()
	res, err := RunExtinction(cfg(8, 1, 5, 14, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Steps != 0 {
		t.Fatalf("grid-wide capture radius: %+v, want instant extinction", res)
	}
}

func TestRadiusZeroRequiresCoLocation(t *testing.T) {
	t.Parallel()
	// One predator, one prey placed on distinct fixed nodes of a large
	// grid: no capture at t=0.
	s, err := New(cfg(32, 1, 1, 0, 7))
	if err != nil {
		t.Fatal(err)
	}
	s.predators[0] = grid.Point{X: 0, Y: 0}
	if s.Done() {
		t.Skip("prey captured at t=0 by random placement; geometry untestable")
	}
	if s.Alive() != 1 {
		t.Fatalf("alive = %d", s.Alive())
	}
}

func TestDeterministicBySeed(t *testing.T) {
	t.Parallel()
	r1, err := RunExtinction(cfg(10, 3, 3, 0, 11))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunExtinction(cfg(10, 3, 3, 0, 11))
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("not deterministic: %+v vs %+v", r1, r2)
	}
}

func TestMorePredatorsFasterOnAverage(t *testing.T) {
	t.Parallel()
	// Average extinction time over seeds must decrease substantially when
	// predators increase 4 -> 32 on the same grid (1/k scaling predicts 8x).
	mean := func(k int) float64 {
		total := 0
		const reps = 12
		for seed := uint64(0); seed < reps; seed++ {
			res, err := RunExtinction(cfg(24, k, 8, 0, seed))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Fatal("incomplete extinction")
			}
			total += res.Steps
		}
		return float64(total) / reps
	}
	m4, m32 := mean(4), mean(32)
	if m32 >= m4 {
		t.Errorf("extinction time did not drop with more predators: k=4 %.1f, k=32 %.1f", m4, m32)
	}
}

func TestMaxStepsCap(t *testing.T) {
	t.Parallel()
	c := cfg(64, 1, 1, 0, 13)
	c.MaxSteps = 2
	res, err := RunExtinction(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Skip("improbable instant capture")
	}
	if res.Steps != 2 || res.Survivors != 1 {
		t.Errorf("capped run: %+v", res)
	}
}

func BenchmarkExtinction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunExtinction(cfg(24, 8, 8, 0, uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTraceMobilitySplitsSpecies checks that under TraceReplay mobility the
// preys replay the trace slice after the predators' — without the offset,
// prey i would shadow predator i exactly and be captured at time 0.
func TestTraceMobilitySplitsSpecies(t *testing.T) {
	t.Parallel()
	const side, preds, preys = 9, 3, 2

	// A synthetic trace of preds+preys stationary agents on distinct nodes:
	// predators on row 0, preys on row 8, far outside capture radius.
	start := make([]grid.Point, preds+preys)
	for i := 0; i < preds; i++ {
		start[i] = grid.Point{X: int32(i), Y: 0}
	}
	for i := 0; i < preys; i++ {
		start[preds+i] = grid.Point{X: int32(i), Y: side - 1}
	}
	rec, err := trace.NewRecorder(side, start)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		if err := rec.Record(start); err != nil { // everyone stays put
			t.Fatal(err)
		}
	}
	model := mobility.TraceReplay{Trace: rec.Trace(), Loop: true}

	c := cfg(side, preds, preys, 1, 7)
	c.Mobility = model
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.Alive() != preys {
		t.Fatalf("time-0 captures under disjoint trace slices: alive=%d, want %d", s.Alive(), preys)
	}
	for i := 0; i < 20; i++ {
		s.Step()
	}
	if s.Alive() != preys {
		t.Errorf("stationary far-apart species captured anyway: alive=%d", s.Alive())
	}

	// A trace too short for both species is rejected, not silently shared.
	shortRec, err := trace.NewRecorder(side, start[:preds])
	if err != nil {
		t.Fatal(err)
	}
	c2 := cfg(side, preds, preys, 1, 7)
	c2.Mobility = mobility.TraceReplay{Trace: shortRec.Trace()}
	if _, err := New(c2); err == nil {
		t.Error("trace covering only the predators accepted")
	}
}
