package meeting

import (
	"math"
	"testing"

	"mobilenet/internal/grid"
	"mobilenet/internal/theory"
)

func TestTrialValidation(t *testing.T) {
	t.Parallel()
	bad := []Trial{
		{Distance: 0, Trials: 10},
		{Distance: -1, Trials: 10},
		{Distance: 4, Trials: 0},
		{Distance: 4, Trials: 10, Horizon: -1},
	}
	for i, tr := range bad {
		if _, err := MeetingProbability(tr); err == nil {
			t.Errorf("case %d: MeetingProbability accepted invalid trial", i)
		}
		if _, err := HittingProbability(tr); err == nil {
			t.Errorf("case %d: HittingProbability accepted invalid trial", i)
		}
	}
}

func TestArenaGeometry(t *testing.T) {
	t.Parallel()
	for _, d := range []int{1, 2, 5, 16, 40} {
		g, a, b := arena(d)
		if !g.Contains(a) || !g.Contains(b) {
			t.Fatalf("d=%d: start nodes off-grid", d)
		}
		if got := grid.ManhattanPoints(a, b); got != d {
			t.Fatalf("d=%d: separation %d", d, got)
		}
		// Starts are far from the boundary relative to d (>= d nodes).
		if d >= 2 {
			if a.X < int32(d) || b.X > int32(g.Side())-int32(d) {
				t.Fatalf("d=%d: starts too close to boundary", d)
			}
		}
	}
}

func TestInLens(t *testing.T) {
	t.Parallel()
	a0 := grid.Point{X: 10, Y: 10}
	b0 := grid.Point{X: 14, Y: 10}
	d := 4
	cases := []struct {
		p    grid.Point
		want bool
	}{
		{grid.Point{X: 12, Y: 10}, true},  // midpoint
		{grid.Point{X: 10, Y: 10}, true},  // a0 itself (distance d from b0)
		{grid.Point{X: 14, Y: 10}, true},  // b0 itself
		{grid.Point{X: 12, Y: 12}, true},  // 2+2 from both
		{grid.Point{X: 9, Y: 10}, false},  // distance 5 from b0
		{grid.Point{X: 12, Y: 14}, false}, // distance 6 from both
	}
	for _, tc := range cases {
		if got := inLens(tc.p, a0, b0, d); got != tc.want {
			t.Errorf("inLens(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestMeetingProbabilityD1(t *testing.T) {
	t.Parallel()
	// At d=1 the walks are adjacent; meeting within 1 step happens exactly
	// when they move onto the same node. The probability is substantial.
	p, err := MeetingProbability(Trial{Distance: 1, Trials: 4000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0.02 || p > 1 {
		t.Errorf("d=1 meeting probability = %v, implausible", p)
	}
}

func TestMeetingProbabilityLemma3Bound(t *testing.T) {
	t.Parallel()
	// The paper: P >= c3/log d. With the calibrated DefaultC3 the measured
	// probability should clear the bound at every tested distance.
	for _, d := range []int{2, 4, 8, 16} {
		p, err := MeetingProbability(Trial{Distance: d, Trials: 1500, Seed: uint64(d)})
		if err != nil {
			t.Fatal(err)
		}
		bound := theory.MeetingLowerBound(d, theory.DefaultC3)
		// Allow three standard errors of slack below the bound.
		slack := 3 * math.Sqrt(p*(1-p)/1500)
		if p+slack < bound {
			t.Errorf("d=%d: meeting probability %.4f below bound %.4f", d, p, bound)
		}
	}
}

func TestMeetingProbabilityDecreasesWithDistance(t *testing.T) {
	t.Parallel()
	p2, err := MeetingProbability(Trial{Distance: 2, Trials: 3000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p32, err := MeetingProbability(Trial{Distance: 32, Trials: 3000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p32 >= p2 {
		t.Errorf("meeting probability should decrease: d=2 %.3f, d=32 %.3f", p2, p32)
	}
}

func TestHittingProbabilityLemma1Bound(t *testing.T) {
	t.Parallel()
	for _, d := range []int{2, 4, 8, 16} {
		p, err := HittingProbability(Trial{Distance: d, Trials: 1500, Seed: uint64(100 + d)})
		if err != nil {
			t.Fatal(err)
		}
		bound := theory.HittingLowerBound(d, theory.DefaultC1)
		slack := 3 * math.Sqrt(p*(1-p)/1500)
		if p+slack < bound {
			t.Errorf("d=%d: hitting probability %.4f below bound %.4f", d, p, bound)
		}
	}
}

func TestCustomHorizonMonotone(t *testing.T) {
	t.Parallel()
	// A longer horizon can only raise the probability.
	short, err := MeetingProbability(Trial{Distance: 8, Trials: 2000, Seed: 5, Horizon: 16})
	if err != nil {
		t.Fatal(err)
	}
	long, err := MeetingProbability(Trial{Distance: 8, Trials: 2000, Seed: 5, Horizon: 256})
	if err != nil {
		t.Fatal(err)
	}
	if long < short {
		t.Errorf("longer horizon lowered probability: %.3f -> %.3f", short, long)
	}
}

func TestMeetingTime(t *testing.T) {
	t.Parallel()
	tm, met, err := MeetingTime(4, 7, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !met {
		t.Skip("walks did not meet within cap (rare); skipping")
	}
	if tm < 1 {
		t.Errorf("meeting time %d < 1", tm)
	}
	if _, _, err := MeetingTime(0, 1, 10); err == nil {
		t.Error("d=0 accepted")
	}
	if _, _, err := MeetingTime(2, 1, 0); err == nil {
		t.Error("maxSteps=0 accepted")
	}
}

func TestEstimatesDeterministic(t *testing.T) {
	t.Parallel()
	tr := Trial{Distance: 4, Trials: 500, Seed: 11}
	p1, err := MeetingProbability(tr)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := MeetingProbability(tr)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Errorf("estimates differ across runs: %v vs %v", p1, p2)
	}
}

func BenchmarkMeetingProbability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := MeetingProbability(Trial{Distance: 8, Trials: 100, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
