// Package meeting estimates the two probabilistic primitives at the heart
// of the paper's upper-bound proof:
//
//   - Lemma 1 (hitting): a walk started at v0 visits a node v at distance d
//     within d^2 steps with probability at least c1/max{1, log d}.
//   - Lemma 3 (meeting): two independent walks started at distance d meet,
//     within d^2 steps, at a node of the lens D (the set of nodes within
//     distance d of both starting points), with probability at least
//     c3/max{1, log d}.
//
// Experiments E6 and E7 sweep d and verify that the measured probability
// times log d stays bounded below by a positive constant.
package meeting

import (
	"fmt"

	"mobilenet/internal/cancel"
	"mobilenet/internal/grid"
	"mobilenet/internal/obs"
	"mobilenet/internal/prof"
	"mobilenet/internal/rng"
	"mobilenet/internal/walk"
)

// Trial describes one meeting/hitting estimation setting.
type Trial struct {
	// Distance is the initial separation d >= 1 between the walks (or
	// between walker and target).
	Distance int
	// Trials is the number of independent Monte-Carlo repetitions.
	Trials int
	// Seed drives all randomness.
	Seed uint64
	// Horizon overrides the number of steps (default d^2 per the lemmas).
	Horizon int
}

func (t *Trial) validate() error {
	if t.Distance < 1 {
		return fmt.Errorf("meeting: distance must be >= 1, got %d", t.Distance)
	}
	if t.Trials < 1 {
		return fmt.Errorf("meeting: trials must be >= 1, got %d", t.Trials)
	}
	if t.Horizon < 0 {
		return fmt.Errorf("meeting: negative horizon %d", t.Horizon)
	}
	return nil
}

func (t *Trial) horizon() int {
	if t.Horizon > 0 {
		return t.Horizon
	}
	return t.Distance * t.Distance
}

// ArenaSide returns the side of the arena a distance-d trial runs on: 6d,
// floored at 8, so boundary reflection does not dominate at scale d. The
// scenario layer uses it to canonicalise the realised grid of a "meeting"
// spec without duplicating the geometry.
func ArenaSide(d int) int {
	side := 6 * d
	if side < 8 {
		side = 8
	}
	return side
}

// arena builds the ArenaSide grid with the two start nodes centred and
// horizontally separated by d.
func arena(d int) (*grid.Grid, grid.Point, grid.Point) {
	g := grid.MustNew(ArenaSide(d))
	c := g.Center()
	a := grid.Point{X: c.X - int32(d)/2, Y: c.Y}
	b := grid.Point{X: a.X + int32(d), Y: c.Y}
	return g, a, b
}

// TrialRun executes a single Lemma 3 meeting trial: two synchronized walks
// start at separation d and run for up to horizon steps (d^2 when horizon
// is 0). It returns the meeting time and true when the walks met at a node
// of the lens D within the horizon, else (horizon, false). One trial is the
// unit of work the scenario layer's "meeting" engine schedules per
// replicate, so a whole probability estimate is just a multi-rep spec.
func TrialRun(d int, seed uint64, horizon int) (steps int, met bool, err error) {
	return TrialRunObserved(d, seed, horizon, nil)
}

// TrialRunObserved is TrialRun with a per-step observer: when rec is
// non-nil, the 0/1 "has met in the lens by step t" indicator is recorded at
// the recorder's cadence (t=0 included), plus once at the meeting step
// itself so the series always ends with the realised outcome. A nil rec
// reproduces TrialRun exactly — there is one implementation of the trial
// physics.
func TrialRunObserved(d int, seed uint64, horizon int, rec *obs.Recorder) (steps int, met bool, err error) {
	return TrialRunProfiled(d, seed, horizon, rec, nil)
}

// TrialRunProfiled is TrialRunObserved with a step-phase profiler: when p
// is non-nil the two walk advances are charged to the move phase, the
// lens/meeting check to spread, and the recorder work to observe. A nil p
// costs one branch per phase, so TrialRun and TrialRunObserved delegate
// here — there is still exactly one implementation of the trial physics.
func TrialRunProfiled(d int, seed uint64, horizon int, rec *obs.Recorder, p *prof.StepProfile) (steps int, met bool, err error) {
	return TrialRunCancellable(d, seed, horizon, rec, p, nil)
}

// TrialRunCancellable is TrialRunProfiled with an amortized cancellation
// check: when stop is non-nil and reports stopped, the trial halts at the
// next step boundary and returns the step it stopped at with met false —
// the caller distinguishes "aborted" from "never met" via stop.Stopped().
// A nil stop costs a constant-false branch, so the profiled variants
// delegate here — there is still exactly one implementation of the trial
// physics.
func TrialRunCancellable(d int, seed uint64, horizon int, rec *obs.Recorder, p *prof.StepProfile, stop *cancel.Check) (steps int, met bool, err error) {
	if d < 1 {
		return 0, false, fmt.Errorf("meeting: distance must be >= 1, got %d", d)
	}
	if horizon < 0 {
		return 0, false, fmt.Errorf("meeting: negative horizon %d", horizon)
	}
	if horizon == 0 {
		horizon = d * d
	}
	g, a0Start, b0Start := arena(d)
	a0, b0 := a0Start, b0Start
	// The two walkers advance through the batched stepper so the step
	// reports which of them actually moved: a step where neither moved
	// cannot change the meeting predicate (had they met, the trial would
	// already have returned), so the lens check is skipped. The stream is
	// bit-identical to the scalar two-call form (see walk.StepAllMoved).
	pair := [2]grid.Point{a0Start, b0Start}
	var ubuf [2]uint64
	var movedBuf [2]int32
	src := rng.New(seed)
	p.Mark()
	if rec != nil && rec.Wants(0) {
		rec.Record(0, obs.Sample{Met: false})
	}
	p.Lap(prof.Observe)
	for t := 1; t <= horizon; t++ {
		if stop.Stop() {
			return t - 1, false, nil
		}
		p.Mark()
		moved := walk.StepAllMoved(g, pair[:], ubuf[:], src, movedBuf[:0])
		a, b := pair[0], pair[1]
		p.Lap(prof.Move)
		if len(moved) > 0 && a == b && inLens(a, a0, b0, d) {
			p.Lap(prof.Spread)
			if rec != nil {
				// The meeting step is always recorded, cadence or not: a
				// series whose last sample still reads 0 would misreport
				// the trial.
				rec.Record(t, obs.Sample{Met: true})
			}
			p.Lap(prof.Observe)
			p.StepDone()
			return t, true, nil
		}
		p.Lap(prof.Spread)
		if rec != nil && rec.Wants(t) {
			rec.Record(t, obs.Sample{Met: false})
		}
		p.Lap(prof.Observe)
		p.StepDone()
	}
	return horizon, false, nil
}

// MeetingProbability estimates P(∃ t <= T: a_t = b_t ∈ D) of Lemma 3 for
// two walks with initial separation d and T = d^2 (or the configured
// horizon). It returns the fraction of trials in which the walks met at a
// node of the lens D within the horizon. Each trial is one TrialRun —
// the same unit the scenario layer's "meeting" engine schedules — under
// a seed drawn from the trial's master stream, so there is exactly one
// implementation of the trial physics.
func MeetingProbability(tr Trial) (float64, error) {
	if err := tr.validate(); err != nil {
		return 0, err
	}
	master := rng.New(tr.Seed)
	hits := 0
	for i := 0; i < tr.Trials; i++ {
		_, met, err := TrialRun(tr.Distance, master.Uint64(), tr.horizon())
		if err != nil {
			return 0, err
		}
		if met {
			hits++
		}
	}
	return float64(hits) / float64(tr.Trials), nil
}

// inLens reports whether p lies in D: within distance d of both starts.
func inLens(p, a0, b0 grid.Point, d int) bool {
	return grid.ManhattanPoints(p, a0) <= d && grid.ManhattanPoints(p, b0) <= d
}

// HittingProbability estimates Lemma 1's quantity: the probability that a
// walk started at v0 visits a fixed target node at distance d within d^2
// steps (or the configured horizon).
func HittingProbability(tr Trial) (float64, error) {
	if err := tr.validate(); err != nil {
		return 0, err
	}
	d := tr.Distance
	g, v0, target := arena(d)
	horizon := tr.horizon()
	master := rng.New(tr.Seed)
	hits := 0
	for i := 0; i < tr.Trials; i++ {
		src := master.Split()
		p := v0
		for t := 1; t <= horizon; t++ {
			p = walk.Step(g, p, src)
			if p == target {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(tr.Trials), nil
}

// MeetingTime runs two synchronized walks from separation d until they
// share a node anywhere on the grid (not restricted to the lens) and
// returns the meeting time, capped at maxSteps (returns maxSteps and false
// if they never met).
func MeetingTime(d int, seed uint64, maxSteps int) (int, bool, error) {
	if d < 1 {
		return 0, false, fmt.Errorf("meeting: distance must be >= 1, got %d", d)
	}
	if maxSteps < 1 {
		return 0, false, fmt.Errorf("meeting: maxSteps must be >= 1, got %d", maxSteps)
	}
	g, a, b := arena(d)
	src := rng.New(seed)
	for t := 1; t <= maxSteps; t++ {
		a = walk.Step(g, a, src)
		b = walk.Step(g, b, src)
		if a == b {
			return t, true, nil
		}
	}
	return maxSteps, false, nil
}
